package httpapi

import (
	"fmt"

	p2h "p2h"
	"p2h/internal/core"
)

// The JSON wire types of the p2hd HTTP API. Every request body is a single
// JSON document; every response is either the documented success shape or an
// ErrorResponse. Field names are snake_case; zero-valued optional fields are
// omitted.

// SearchOptionsJSON is the query-tuning surface shared by search and
// search_batch requests: the fields of p2h.SearchOptions that survive a
// network boundary (Filter is an arbitrary function and Profile a live
// pointer; neither has a wire form).
type SearchOptionsJSON struct {
	// K is the number of neighbors to return (zero: 1).
	K int `json:"k,omitempty"`
	// Budget caps candidate verifications (zero or negative: exact).
	Budget int `json:"budget,omitempty"`
	// Preference is "center" (default) or "lower-bound".
	Preference string `json:"preference,omitempty"`
	// The BC-Tree ablation switches, mirroring p2h.SearchOptions.
	DisablePointBall bool `json:"disable_point_ball,omitempty"`
	DisablePointCone bool `json:"disable_point_cone,omitempty"`
	DisableCollabIP  bool `json:"disable_collab_ip,omitempty"`
	// Filter is a declarative attribute predicate (p2h.Pred's JSON form:
	// tag / any_tag / field+min/max / and / or / not) restricting the search
	// to matching points. Unlike an in-process Filter closure it survives
	// the network boundary, stays cacheable, and the tree kinds push it down
	// into traversal.
	Filter *p2h.Pred `json:"filter,omitempty"`
	// TimeoutMS is the client's deadline for the whole request in
	// milliseconds, capped by the daemon's max_timeout. Zero applies the
	// daemon's default. A request that misses its deadline answers 504 with
	// no results; one that expires while still queued never touches the
	// index.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// toOptions validates and converts the wire options.
func (o SearchOptionsJSON) toOptions() (core.SearchOptions, error) {
	opts := core.SearchOptions{
		K:                o.K,
		Budget:           o.Budget,
		DisablePointBall: o.DisablePointBall,
		DisablePointCone: o.DisablePointCone,
		DisableCollabIP:  o.DisableCollabIP,
	}
	switch o.Preference {
	case "", "center":
		opts.Preference = core.PrefCenter
	case "lower-bound", "lower_bound":
		opts.Preference = core.PrefLowerBound
	default:
		return opts, fmt.Errorf("%w: unknown preference %q (want \"center\" or \"lower-bound\")",
			errBadRequest, o.Preference)
	}
	if o.K < 0 {
		return opts, fmt.Errorf("%w: negative k %d", errBadRequest, o.K)
	}
	if o.TimeoutMS < 0 {
		return opts, fmt.Errorf("%w: negative timeout_ms %d", errBadRequest, o.TimeoutMS)
	}
	if o.Filter != nil {
		if err := o.Filter.Validate(); err != nil {
			return opts, fmt.Errorf("%w: filter: %v", errBadRequest, err)
		}
		opts.Pred = o.Filter
	}
	return opts, nil
}

// SearchRequest asks one top-k hyperplane query. The hyperplane arrives
// either as the full query vector (normal components then offset, dim+1
// values) or as a separate normal and offset; exactly one form must be set.
type SearchRequest struct {
	Query  []float32 `json:"query,omitempty"`
	Normal []float32 `json:"normal,omitempty"`
	Offset float64   `json:"offset,omitempty"`
	SearchOptionsJSON
}

// query assembles and validates the hyperplane against the index's raw
// dimensionality dim.
func (r *SearchRequest) query(dim int) ([]float32, error) {
	return assembleQuery(r.Query, r.Normal, r.Offset, dim)
}

func assembleQuery(query, normal []float32, offset float64, dim int) ([]float32, error) {
	var q []float32
	switch {
	case query != nil && normal != nil:
		return nil, fmt.Errorf("%w: \"query\" and \"normal\" are mutually exclusive", errBadRequest)
	case query != nil:
		q = query
	case normal != nil:
		q = make([]float32, len(normal)+1)
		copy(q, normal)
		q[len(normal)] = float32(offset)
	default:
		return nil, fmt.Errorf("%w: missing \"query\" (or \"normal\"+\"offset\")", errBadRequest)
	}
	if _, err := core.CheckQuery(q, dim); err != nil {
		return nil, err
	}
	return q, nil
}

// ResultJSON is one search answer.
type ResultJSON struct {
	ID   int32   `json:"id"`
	Dist float64 `json:"dist"`
}

// StatsJSON is the wire form of core.Stats.
type StatsJSON struct {
	IPCount       int64 `json:"ip_count"`
	Candidates    int64 `json:"candidates"`
	NodesVisited  int64 `json:"nodes_visited"`
	LeavesVisited int64 `json:"leaves_visited"`
	PrunedNodes   int64 `json:"pruned_nodes"`
	PrunedPoints  int64 `json:"pruned_points"`
	BucketProbes  int64 `json:"bucket_probes"`
	CollabIPs     int64 `json:"collab_ips"`
	// FilterSkipped* count whole subtrees (and the points under them) a
	// pushed-down predicate proved unmatchable without visiting.
	FilterSkippedNodes  int64 `json:"filter_skipped_nodes,omitempty"`
	FilterSkippedPoints int64 `json:"filter_skipped_points,omitempty"`
}

func toStatsJSON(s core.Stats) StatsJSON {
	return StatsJSON{
		IPCount:             s.IPCount,
		Candidates:          s.Candidates,
		NodesVisited:        s.NodesVisited,
		LeavesVisited:       s.LeavesVisited,
		PrunedNodes:         s.PrunedNodes,
		PrunedPoints:        s.PrunedPoints,
		BucketProbes:        s.BucketProbes,
		CollabIPs:           s.CollabIPs,
		FilterSkippedNodes:  s.FilterSkippedNodes,
		FilterSkippedPoints: s.FilterSkippedPoints,
	}
}

func toResultsJSON(res []core.Result) []ResultJSON {
	out := make([]ResultJSON, len(res))
	for i, r := range res {
		out[i] = ResultJSON{ID: r.ID, Dist: r.Dist}
	}
	return out
}

// SearchResponse answers SearchRequest.
type SearchResponse struct {
	Results []ResultJSON `json:"results"`
	Stats   StatsJSON    `json:"stats"`
}

// BatchSearchRequest asks many queries with shared options; each row is a
// full (normal; offset) query vector.
type BatchSearchRequest struct {
	Queries [][]float32 `json:"queries"`
	SearchOptionsJSON
}

// BatchSearchResponse answers BatchSearchRequest: per-query results in
// request order plus work counters aggregated over the whole batch.
type BatchSearchResponse struct {
	Results [][]ResultJSON `json:"results"`
	Stats   StatsJSON      `json:"stats"`
}

// InsertRequest adds one raw point (dim values) to a mutable index,
// optionally with an attribute payload predicates can filter on.
type InsertRequest struct {
	Point []float32 `json:"point"`
	// Attrs carries the point's tags and numeric fields; with a WAL
	// attached the payload is journaled alongside the vector.
	Attrs *p2h.PointAttrs `json:"attrs,omitempty"`
}

// InsertResponse carries the stable handle Insert assigned.
type InsertResponse struct {
	Handle int32 `json:"handle"`
}

// DeleteResponse reports a point deletion.
type DeleteResponse struct {
	Deleted bool  `json:"deleted"`
	Handle  int32 `json:"handle"`
}

// SnapshotRequest asks the daemon to persist an index to a server-side path.
type SnapshotRequest struct {
	Path string `json:"path"`
}

// SnapshotResponse reports a written snapshot.
type SnapshotResponse struct {
	Path  string `json:"path"`
	Bytes int64  `json:"bytes"`
}

// LoadRequest stands up (or, with Replace, hot-swaps) a named index.
type LoadRequest struct {
	IndexConfig
	// Replace allows overwriting an already-loaded name: the new index is
	// built first, swapped in atomically, and the old one drained away.
	Replace bool `json:"replace,omitempty"`
}

// UnloadResponse reports an index unload.
type UnloadResponse struct {
	Unloaded bool `json:"unloaded"`
	// Drained is false when in-flight queries did not finish within the
	// manager's drain timeout; the index is gone from the table either way.
	Drained bool `json:"drained"`
}

// ServerStatsJSON is the wire form of p2h.ServerStats.
type ServerStatsJSON struct {
	Queries     int64  `json:"queries"`
	Batches     int64  `json:"batches"`
	CacheHits   int64  `json:"cache_hits"`
	CacheMisses int64  `json:"cache_misses"`
	Inserts     int64  `json:"inserts"`
	Deletes     int64  `json:"deletes"`
	Epoch       uint64 `json:"epoch"`
	Compactions int64  `json:"compactions"`
	// PendingDelta is the un-folded delta (insert buffer + tombstones)
	// searches currently pay for; rebuilds and compactions reset it.
	PendingDelta int `json:"pending_delta"`
	// Shed counts deadline-carrying searches rejected by admission control
	// (HTTP 429); Expired counts requests whose deadline fired before any
	// index work ran; Panics counts worker-pool panics isolated without
	// losing the pool.
	Shed    int64 `json:"shed"`
	Expired int64 `json:"expired"`
	Panics  int64 `json:"panics"`
	// DegradedQueries counts searches whose budget the degradation ceiling
	// clamped; BudgetCeiling is the current cap (zero: serving exact);
	// Backlog is the admitted-but-unfinished request count right now.
	DegradedQueries int64 `json:"degraded_queries"`
	BudgetCeiling   int   `json:"budget_ceiling"`
	Backlog         int64 `json:"backlog"`
	// FilterSkipped* accumulate predicate-pushdown pruning across every
	// search the index actually ran: whole subtrees the per-node attribute
	// summaries proved could not match, and the points under them.
	FilterSkippedNodes  int64 `json:"filter_skipped_nodes"`
	FilterSkippedPoints int64 `json:"filter_skipped_points"`
}

func toServerStatsJSON(s p2h.ServerStats) ServerStatsJSON {
	return ServerStatsJSON{
		Queries:         s.Queries,
		Batches:         s.Batches,
		CacheHits:       s.CacheHits,
		CacheMisses:     s.CacheMisses,
		Inserts:         s.Inserts,
		Deletes:         s.Deletes,
		Epoch:           s.Epoch,
		Compactions:     s.Compactions,
		PendingDelta:    s.PendingDelta,
		Shed:            s.Shed,
		Expired:         s.Expired,
		Panics:          s.Panics,
		DegradedQueries: s.DegradedQueries,
		BudgetCeiling:   s.BudgetCeiling,
		Backlog:         s.Backlog,

		FilterSkippedNodes:  s.FilterSkippedNodes,
		FilterSkippedPoints: s.FilterSkippedPoints,
	}
}

// WALInfoJSON describes an index's attached write-ahead log.
type WALInfoJSON struct {
	// Path is the log file's location.
	Path string `json:"path"`
	// Sync is the fsync policy, "always" or "none".
	Sync string `json:"sync"`
	// Records is the current pending record count — acknowledged mutations
	// not yet absorbed by a snapshot.
	Records int64 `json:"records"`
	// Replayed is the pending record count the load-time replay consumed to
	// restore the pre-crash state.
	Replayed int `json:"replayed"`
	// Syncs is the number of fsyncs the log has issued; under group commit
	// the ratio Records/Syncs is the amortization factor concurrent durable
	// writers achieved.
	Syncs int64 `json:"syncs"`
}

// IndexInfoResponse describes one served index.
type IndexInfoResponse struct {
	Name       string          `json:"name"`
	Kind       string          `json:"kind"`
	Dim        int             `json:"dim"`
	N          int             `json:"n"`
	IndexBytes int64           `json:"index_bytes"`
	Mutable    bool            `json:"mutable"`
	Stats      ServerStatsJSON `json:"stats"`
	// WAL describes the attached write-ahead log, when the index has one.
	WAL *WALInfoJSON `json:"wal,omitempty"`
	// Source is the declaration the index was stood up from (the container
	// path, or the spec and data file).
	Source IndexConfig `json:"source"`
}

// ListResponse enumerates the served indexes, sorted by name.
type ListResponse struct {
	Indexes []IndexInfoResponse `json:"indexes"`
}

// HealthResponse answers GET /healthz. A served daemon has by definition
// finished every load-time WAL replay (indexes only enter the table fully
// recovered), so WALReplayedRecords reporting alongside "ok" doubles as
// the replay-completion signal crash-recovery probes look for.
//
// Status is "ok" (200), or "draining"/"swapping" (503) while the daemon is
// shutting down or an index hot-swap is retiring its old engine — the signal
// load balancers use to stop routing before connections start resetting.
// Degraded reporting true (still 200) means at least one index is serving
// under an SLO-controller budget ceiling: answers are approximate until load
// recedes.
type HealthResponse struct {
	Status        string `json:"status"`
	Indexes       int    `json:"indexes"`
	UptimeSeconds int64  `json:"uptime_seconds"`
	// Reason explains a non-ok status in human-readable form.
	Reason string `json:"reason,omitempty"`
	// Degraded reports whether any index currently serves with a budget
	// ceiling; DegradedIndexes counts them.
	Degraded        bool `json:"degraded,omitempty"`
	DegradedIndexes int  `json:"degraded_indexes,omitempty"`
	// WALIndexes counts loaded indexes with a write-ahead log attached.
	WALIndexes int `json:"wal_indexes"`
	// WALReplayedRecords totals the pending records consumed by load-time
	// replays across those indexes.
	WALReplayedRecords int `json:"wal_replayed_records"`
	// WALPendingRecords totals the records currently in the logs.
	WALPendingRecords int64 `json:"wal_pending_records"`
}

// ErrorResponse is the uniform error envelope: a stable machine-readable
// code plus a human-readable message.
type ErrorResponse struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}
