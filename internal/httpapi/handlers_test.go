package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	p2h "p2h"
)

// testMatrix builds n random d-dimensional raw points.
func testMatrix(n, d int, seed int64) *p2h.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := p2h.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// fixture is one ready-to-serve daemon over two indexes of different kinds:
// "trees" (an immutable BC-Tree opened from a .p2h container) and "dyn" (a
// mutable dynamic index built from a Spec over an fvecs file).
type fixture struct {
	ts      *httptest.Server
	queries *p2h.Matrix
	dir     string
	bctree  p2h.Index // direct handle for answer comparison
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	dir := t.TempDir()
	data := testMatrix(300, 8, 1)
	queries := p2h.GenerateQueries(data, 10, 2)

	dataPath := filepath.Join(dir, "data.fvecs")
	if err := p2h.SaveFvecs(dataPath, data); err != nil {
		t.Fatal(err)
	}
	ix, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBCTree, LeafSize: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	containerPath := filepath.Join(dir, "trees.p2h")
	if err := p2h.SaveFile(containerPath, ix); err != nil {
		t.Fatal(err)
	}

	m := NewManager(p2h.ServerOptions{Workers: 2, MaxBatch: 4}, 0)
	if _, _, err := m.Load("trees", IndexConfig{Path: containerPath}, false); err != nil {
		t.Fatal(err)
	}
	if _, _, err := m.Load("dyn", IndexConfig{
		Spec: &p2h.Spec{Kind: p2h.KindDynamic, LeafSize: 32, Seed: 3}, Data: dataPath,
	}, false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandler(m))
	t.Cleanup(func() {
		ts.Close()
		_ = m.Close(t.Context())
	})
	return &fixture{ts: ts, queries: queries, dir: dir, bctree: ix}
}

// do runs one JSON request and decodes the response body.
func (f *fixture) do(t *testing.T, method, path string, body any) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, f.ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := f.ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func unmarshal[T any](t *testing.T, b []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("decoding %q: %v", b, err)
	}
	return v
}

// wantError asserts the uniform error envelope.
func wantError(t *testing.T, status int, body []byte, wantStatus int, wantCode string) {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("status %d (%s), want %d", status, body, wantStatus)
	}
	e := unmarshal[ErrorResponse](t, body)
	if e.Code != wantCode {
		t.Fatalf("error code %q (%s), want %q", e.Code, e.Error, wantCode)
	}
}

func TestHealthz(t *testing.T) {
	f := newFixture(t)
	status, body := f.do(t, "GET", "/healthz", nil)
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	h := unmarshal[HealthResponse](t, body)
	if h.Status != "ok" || h.Indexes != 2 {
		t.Fatalf("health %+v", h)
	}
}

func TestListAndInfo(t *testing.T) {
	f := newFixture(t)
	status, body := f.do(t, "GET", "/v1/indexes", nil)
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	list := unmarshal[ListResponse](t, body)
	if len(list.Indexes) != 2 || list.Indexes[0].Name != "dyn" || list.Indexes[1].Name != "trees" {
		t.Fatalf("list %+v", list)
	}

	status, body = f.do(t, "GET", "/v1/indexes/trees", nil)
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	info := unmarshal[IndexInfoResponse](t, body)
	if info.Kind != p2h.KindBCTree || info.Dim != 8 || info.N != 300 || info.Mutable {
		t.Fatalf("trees info %+v", info)
	}
	status, body = f.do(t, "GET", "/v1/indexes/dyn", nil)
	info = unmarshal[IndexInfoResponse](t, body)
	if status != 200 || info.Kind != p2h.KindDynamic || !info.Mutable {
		t.Fatalf("dyn info %d %+v", status, info)
	}

	status, body = f.do(t, "GET", "/v1/indexes/ghost", nil)
	wantError(t, status, body, 404, "index_not_found")
}

func TestSearchMatchesDirect(t *testing.T) {
	f := newFixture(t)
	for i := 0; i < f.queries.N; i++ {
		q := f.queries.Row(i)
		status, body := f.do(t, "POST", "/v1/indexes/trees/search", SearchRequest{
			Query: q, SearchOptionsJSON: SearchOptionsJSON{K: 5},
		})
		if status != 200 {
			t.Fatalf("query %d: status %d (%s)", i, status, body)
		}
		resp := unmarshal[SearchResponse](t, body)
		want, _ := f.bctree.Search(q, p2h.SearchOptions{K: 5})
		if len(resp.Results) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(resp.Results), len(want))
		}
		for j, r := range resp.Results {
			if r.ID != want[j].ID || r.Dist != want[j].Dist {
				t.Fatalf("query %d rank %d: %+v != %+v", i, j, r, want[j])
			}
		}
		if resp.Stats.Candidates == 0 {
			t.Fatalf("query %d: empty stats", i)
		}
	}
}

func TestSearchNormalOffsetForm(t *testing.T) {
	f := newFixture(t)
	q := f.queries.Row(0)
	normal, offset := q[:len(q)-1], float64(q[len(q)-1])
	status, body := f.do(t, "POST", "/v1/indexes/trees/search", SearchRequest{
		Normal: normal, Offset: offset, SearchOptionsJSON: SearchOptionsJSON{K: 3},
	})
	if status != 200 {
		t.Fatalf("status %d (%s)", status, body)
	}
	resp := unmarshal[SearchResponse](t, body)
	want, _ := f.bctree.Search(q, p2h.SearchOptions{K: 3})
	for j, r := range resp.Results {
		if r.ID != want[j].ID {
			t.Fatalf("rank %d: %+v != %+v", j, r, want[j])
		}
	}
}

func TestSearchOptionsMapped(t *testing.T) {
	f := newFixture(t)
	q := f.queries.Row(1)
	// A tight budget must cap the candidate count exactly as SearchOptions does.
	status, body := f.do(t, "POST", "/v1/indexes/trees/search", SearchRequest{
		Query: q, SearchOptionsJSON: SearchOptionsJSON{K: 3, Budget: 40, Preference: "lower-bound"},
	})
	if status != 200 {
		t.Fatalf("status %d (%s)", status, body)
	}
	resp := unmarshal[SearchResponse](t, body)
	want, wantStats := f.bctree.Search(q, p2h.SearchOptions{
		K: 3, Budget: 40, Preference: p2h.PrefLowerBound,
	})
	if resp.Stats.Candidates != wantStats.Candidates {
		t.Fatalf("candidates %d, want %d", resp.Stats.Candidates, wantStats.Candidates)
	}
	for j, r := range resp.Results {
		if r.ID != want[j].ID {
			t.Fatalf("rank %d: %+v != %+v", j, r, want[j])
		}
	}
}

func TestSearchErrorMapping(t *testing.T) {
	f := newFixture(t)
	q := f.queries.Row(0)
	for name, c := range map[string]struct {
		path   string
		body   any
		status int
		code   string
	}{
		"unknown index":  {"/v1/indexes/ghost/search", SearchRequest{Query: q}, 404, "index_not_found"},
		"missing query":  {"/v1/indexes/trees/search", SearchRequest{}, 400, "bad_request"},
		"both forms":     {"/v1/indexes/trees/search", SearchRequest{Query: q, Normal: q[:8]}, 400, "bad_request"},
		"short query":    {"/v1/indexes/trees/search", SearchRequest{Query: q[:4]}, 400, "dim_mismatch"},
		"zero normal":    {"/v1/indexes/trees/search", SearchRequest{Query: make([]float32, 9)}, 400, "zero_normal"},
		"bad preference": {"/v1/indexes/trees/search", SearchRequest{Query: q, SearchOptionsJSON: SearchOptionsJSON{Preference: "sideways"}}, 400, "bad_request"},
		"negative k":     {"/v1/indexes/trees/search", SearchRequest{Query: q, SearchOptionsJSON: SearchOptionsJSON{K: -2}}, 400, "bad_request"},
		"unknown field":  {"/v1/indexes/trees/search", map[string]any{"query": q, "nope": 1}, 400, "bad_request"},
	} {
		status, body := f.do(t, "POST", c.path, c.body)
		t.Run(name, func(t *testing.T) { wantError(t, status, body, c.status, c.code) })
	}
	// Raw non-JSON body.
	resp, err := f.ts.Client().Post(f.ts.URL+"/v1/indexes/trees/search", "application/json",
		strings.NewReader("not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("raw garbage: status %d", resp.StatusCode)
	}
}

func TestSearchBatchMatchesPerQuery(t *testing.T) {
	f := newFixture(t)
	qs := make([][]float32, f.queries.N)
	for i := range qs {
		qs[i] = f.queries.Row(i)
	}
	status, body := f.do(t, "POST", "/v1/indexes/trees/search_batch", BatchSearchRequest{
		Queries: qs, SearchOptionsJSON: SearchOptionsJSON{K: 4},
	})
	if status != 200 {
		t.Fatalf("status %d (%s)", status, body)
	}
	resp := unmarshal[BatchSearchResponse](t, body)
	if len(resp.Results) != len(qs) {
		t.Fatalf("%d result rows, want %d", len(resp.Results), len(qs))
	}
	for i, q := range qs {
		want, _ := f.bctree.Search(q, p2h.SearchOptions{K: 4})
		for j, r := range resp.Results[i] {
			if r.ID != want[j].ID || r.Dist != want[j].Dist {
				t.Fatalf("query %d rank %d: %+v != %+v", i, j, r, want[j])
			}
		}
	}
	if resp.Stats.Candidates == 0 {
		t.Fatal("aggregate stats empty")
	}
}

func TestSearchBatchErrors(t *testing.T) {
	f := newFixture(t)
	status, body := f.do(t, "POST", "/v1/indexes/trees/search_batch", BatchSearchRequest{})
	wantError(t, status, body, 400, "bad_request")
	status, body = f.do(t, "POST", "/v1/indexes/trees/search_batch", BatchSearchRequest{
		Queries: [][]float32{f.queries.Row(0), {1, 2}},
	})
	wantError(t, status, body, 400, "dim_mismatch")
}

func TestInsertAndDeletePoint(t *testing.T) {
	f := newFixture(t)
	// A far-out point along the first axis; the hyperplane x0 = 0 then has it
	// at distance ~100.
	p := make([]float32, 8)
	p[0] = 100
	status, body := f.do(t, "POST", "/v1/indexes/dyn/insert", InsertRequest{Point: p})
	if status != 200 {
		t.Fatalf("insert: %d (%s)", status, body)
	}
	h := unmarshal[InsertResponse](t, body).Handle

	q := make([]float32, 9)
	q[0] = 1
	q[8] = -100 // hyperplane x0 = 100: the new point is distance 0
	status, body = f.do(t, "POST", "/v1/indexes/dyn/search", SearchRequest{
		Query: q, SearchOptionsJSON: SearchOptionsJSON{K: 1},
	})
	if status != 200 {
		t.Fatalf("search: %d (%s)", status, body)
	}
	if res := unmarshal[SearchResponse](t, body).Results; len(res) != 1 || res[0].ID != h {
		t.Fatalf("inserted point not found: %+v (handle %d)", res, h)
	}

	status, body = f.do(t, "DELETE", fmt.Sprintf("/v1/indexes/dyn/points/%d", h), nil)
	if status != 200 {
		t.Fatalf("delete: %d (%s)", status, body)
	}
	if d := unmarshal[DeleteResponse](t, body); !d.Deleted || d.Handle != h {
		t.Fatalf("delete response %+v", d)
	}
	// Deleting again: the handle is dead.
	status, body = f.do(t, "DELETE", fmt.Sprintf("/v1/indexes/dyn/points/%d", h), nil)
	wantError(t, status, body, 404, "handle_not_found")
}

func TestMutationErrorMapping(t *testing.T) {
	f := newFixture(t)
	p := make([]float32, 8)
	// The immutable BC-Tree maps ErrImmutable onto 405.
	status, body := f.do(t, "POST", "/v1/indexes/trees/insert", InsertRequest{Point: p})
	wantError(t, status, body, 405, "immutable")
	status, body = f.do(t, "DELETE", "/v1/indexes/trees/points/0", nil)
	wantError(t, status, body, 405, "immutable")
	// Wrong dimensionality is rejected before it can reach the index.
	status, body = f.do(t, "POST", "/v1/indexes/dyn/insert", InsertRequest{Point: p[:3]})
	wantError(t, status, body, 400, "dim_mismatch")
	// A non-numeric handle is a request error.
	status, body = f.do(t, "DELETE", "/v1/indexes/dyn/points/xyz", nil)
	wantError(t, status, body, 400, "bad_request")
}

func TestSnapshotAndHotReload(t *testing.T) {
	f := newFixture(t)
	// Mutate, snapshot, then hot-swap the index from its own snapshot.
	p := make([]float32, 8)
	p[0] = 42
	status, body := f.do(t, "POST", "/v1/indexes/dyn/insert", InsertRequest{Point: p})
	if status != 200 {
		t.Fatalf("insert: %d (%s)", status, body)
	}
	snap := filepath.Join(f.dir, "dyn-snap.p2h")
	status, body = f.do(t, "POST", "/v1/indexes/dyn/snapshot", SnapshotRequest{Path: snap})
	if status != 200 {
		t.Fatalf("snapshot: %d (%s)", status, body)
	}
	sr := unmarshal[SnapshotResponse](t, body)
	st, err := os.Stat(snap)
	if err != nil || st.Size() != sr.Bytes {
		t.Fatalf("snapshot file: %v (size %d, reported %d)", err, st.Size(), sr.Bytes)
	}

	status, body = f.do(t, "POST", "/v1/indexes/dyn", LoadRequest{
		IndexConfig: IndexConfig{Path: snap}, Replace: true,
	})
	if status != 200 {
		t.Fatalf("hot reload: %d (%s)", status, body)
	}
	info := unmarshal[IndexInfoResponse](t, body)
	if info.Kind != p2h.KindDynamic || info.N != 301 {
		t.Fatalf("reloaded info %+v", info)
	}
	// The restored index still finds the inserted point.
	q := make([]float32, 9)
	q[0] = 1
	q[8] = -42
	status, body = f.do(t, "POST", "/v1/indexes/dyn/search", SearchRequest{
		Query: q, SearchOptionsJSON: SearchOptionsJSON{K: 1},
	})
	if status != 200 {
		t.Fatalf("post-reload search: %d (%s)", status, body)
	}
	if res := unmarshal[SearchResponse](t, body).Results; len(res) != 1 || res[0].Dist > 1e-3 {
		t.Fatalf("post-reload search: %+v", res)
	}

	// Snapshot request errors.
	status, body = f.do(t, "POST", "/v1/indexes/dyn/snapshot", SnapshotRequest{})
	wantError(t, status, body, 400, "bad_request")
	status, body = f.do(t, "POST", "/v1/indexes/ghost/snapshot", SnapshotRequest{Path: snap})
	wantError(t, status, body, 404, "index_not_found")
}

func TestAdminLoadUnload(t *testing.T) {
	f := newFixture(t)
	dataPath := filepath.Join(f.dir, "data.fvecs")

	// Load a third index of another kind from an inline spec.
	status, body := f.do(t, "POST", "/v1/indexes/ball", LoadRequest{
		IndexConfig: IndexConfig{Spec: &p2h.Spec{Kind: p2h.KindBallTree, LeafSize: 16}, Data: dataPath},
	})
	if status != 201 {
		t.Fatalf("load: %d (%s)", status, body)
	}
	if info := unmarshal[IndexInfoResponse](t, body); info.Kind != p2h.KindBallTree || info.N != 300 {
		t.Fatalf("loaded info %+v", info)
	}

	// Its queries serve immediately.
	status, body = f.do(t, "POST", "/v1/indexes/ball/search", SearchRequest{
		Query: f.queries.Row(0), SearchOptionsJSON: SearchOptionsJSON{K: 2},
	})
	if status != 200 {
		t.Fatalf("search on hot-loaded index: %d (%s)", status, body)
	}

	// Name collision without replace.
	status, body = f.do(t, "POST", "/v1/indexes/ball", LoadRequest{
		IndexConfig: IndexConfig{Spec: &p2h.Spec{Kind: p2h.KindBallTree}, Data: dataPath},
	})
	wantError(t, status, body, 409, "index_exists")

	// Unload, then the name is gone.
	status, body = f.do(t, "DELETE", "/v1/indexes/ball", nil)
	if status != 200 {
		t.Fatalf("unload: %d (%s)", status, body)
	}
	if u := unmarshal[UnloadResponse](t, body); !u.Unloaded || !u.Drained {
		t.Fatalf("unload response %+v", u)
	}
	status, body = f.do(t, "DELETE", "/v1/indexes/ball", nil)
	wantError(t, status, body, 404, "index_not_found")
}

func TestAdminLoadErrorMapping(t *testing.T) {
	f := newFixture(t)
	dataPath := filepath.Join(f.dir, "data.fvecs")
	badContainer := filepath.Join(f.dir, "bad.p2h")
	if err := os.WriteFile(badContainer, []byte("this is not a container"), 0o644); err != nil {
		t.Fatal(err)
	}
	for name, c := range map[string]struct {
		path   string
		body   LoadRequest
		status int
		code   string
	}{
		"unknown kind": {"/v1/indexes/x1", LoadRequest{IndexConfig: IndexConfig{
			Spec: &p2h.Spec{Kind: "warp-drive"}, Data: dataPath}}, 400, "unknown_kind"},
		"empty config": {"/v1/indexes/x2", LoadRequest{}, 400, "bad_request"},
		"path plus spec": {"/v1/indexes/x3", LoadRequest{IndexConfig: IndexConfig{
			Path: badContainer, Spec: &p2h.Spec{Kind: p2h.KindBCTree}}}, 400, "bad_request"},
		"bad container": {"/v1/indexes/x4", LoadRequest{IndexConfig: IndexConfig{
			Path: badContainer}}, 400, "bad_container"},
		"missing file": {"/v1/indexes/x5", LoadRequest{IndexConfig: IndexConfig{
			Path: filepath.Join(f.dir, "ghost.p2h")}}, 400, "file_not_found"},
		"dim mismatch": {"/v1/indexes/x6", LoadRequest{IndexConfig: IndexConfig{
			Spec: &p2h.Spec{Kind: p2h.KindBCTree, Dim: 99}, Data: dataPath}}, 400, "dim_mismatch"},
		"spec without data": {"/v1/indexes/x7", LoadRequest{IndexConfig: IndexConfig{
			Spec: &p2h.Spec{Kind: p2h.KindBCTree}}}, 400, "bad_request"},
		"bad name": {"/v1/indexes/no%2Fslashes", LoadRequest{IndexConfig: IndexConfig{
			Spec: &p2h.Spec{Kind: p2h.KindBCTree}, Data: dataPath}}, 400, "bad_request"},
	} {
		status, body := f.do(t, "POST", c.path, c.body)
		t.Run(name, func(t *testing.T) { wantError(t, status, body, c.status, c.code) })
	}
}

func TestMetricsExposition(t *testing.T) {
	f := newFixture(t)
	// Generate some traffic first: searches, a 404, an insert.
	f.do(t, "POST", "/v1/indexes/trees/search", SearchRequest{Query: f.queries.Row(0)})
	f.do(t, "POST", "/v1/indexes/ghost/search", SearchRequest{Query: f.queries.Row(0)})
	p := make([]float32, 8)
	f.do(t, "POST", "/v1/indexes/dyn/insert", InsertRequest{Point: p})

	status, body := f.do(t, "GET", "/metrics", nil)
	if status != 200 {
		t.Fatalf("status %d", status)
	}
	text := string(body)
	for _, want := range []string{
		`p2hd_http_requests_total{endpoint="search",code="200"} 1`,
		`p2hd_http_requests_total{endpoint="search",code="404"} 1`,
		`p2hd_http_requests_total{endpoint="insert",code="200"} 1`,
		`p2hd_http_request_duration_seconds_bucket{endpoint="search",le="+Inf"} 2`,
		`p2hd_http_request_duration_seconds_count{endpoint="search"} 2`,
		`p2hd_index_queries_total{index="trees",kind="bctree"} 1`,
		`p2hd_index_inserts_total{index="dyn",kind="dynamic"} 1`,
		`p2hd_index_points{index="dyn",kind="dynamic"} 301`,
		`# TYPE p2hd_http_request_duration_seconds histogram`,
		`# TYPE p2hd_index_queries_total counter`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}

// TestConcurrentTraffic is the acceptance scenario: concurrent search +
// mutation + snapshot/hot-reload over HTTP against two named indexes of
// different kinds, raced under -race.
func TestConcurrentTraffic(t *testing.T) {
	f := newFixture(t)
	snap := filepath.Join(f.dir, "concurrent-snap.p2h")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := "trees"
			if g%2 == 1 {
				name = "dyn"
			}
			for i := 0; i < 25; i++ {
				status, body := f.do(t, "POST", "/v1/indexes/"+name+"/search", SearchRequest{
					Query: f.queries.Row((g + i) % f.queries.N), SearchOptionsJSON: SearchOptionsJSON{K: 3},
				})
				if status != 200 {
					t.Errorf("search %s: %d (%s)", name, status, body)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := make([]float32, 8)
		for i := 0; i < 20; i++ {
			p[0] = float32(i)
			status, body := f.do(t, "POST", "/v1/indexes/dyn/insert", InsertRequest{Point: p})
			if status != 200 {
				t.Errorf("insert: %d (%s)", status, body)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			status, body := f.do(t, "POST", "/v1/indexes/dyn/snapshot", SnapshotRequest{Path: snap})
			if status != 200 {
				t.Errorf("snapshot: %d (%s)", status, body)
				return
			}
			status, body = f.do(t, "POST", "/v1/indexes/dyn", LoadRequest{
				IndexConfig: IndexConfig{Path: snap}, Replace: true,
			})
			if status != 200 {
				t.Errorf("hot reload: %d (%s)", status, body)
				return
			}
		}
	}()
	wg.Wait()

	// Both indexes still answer after the storm.
	for _, name := range []string{"trees", "dyn"} {
		status, body := f.do(t, "POST", "/v1/indexes/"+name+"/search", SearchRequest{
			Query: f.queries.Row(0), SearchOptionsJSON: SearchOptionsJSON{K: 1},
		})
		if status != 200 {
			t.Fatalf("final search %s: %d (%s)", name, status, body)
		}
	}
}

func TestSnapshotBuildOnlyKindMapped(t *testing.T) {
	f := newFixture(t)
	dataPath := filepath.Join(f.dir, "data.fvecs")
	status, body := f.do(t, "POST", "/v1/indexes/hash", LoadRequest{
		IndexConfig: IndexConfig{Spec: &p2h.Spec{Kind: p2h.KindNH}, Data: dataPath},
	})
	if status != 201 {
		t.Fatalf("load nh: %d (%s)", status, body)
	}
	status, body = f.do(t, "POST", "/v1/indexes/hash/snapshot",
		SnapshotRequest{Path: filepath.Join(f.dir, "nh.p2h")})
	wantError(t, status, body, 400, "not_persistable")
}

func TestBodyTooLargeMapping(t *testing.T) {
	if status, code := errorStatus(fmt.Errorf("%w: body exceeds 1 bytes", errBodyTooLarge)); status != 413 || code != "body_too_large" {
		t.Fatalf("errBodyTooLarge mapped to %d %q", status, code)
	}
}
