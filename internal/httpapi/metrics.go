package httpapi

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Prometheus text-format metrics, stdlib only: per-endpoint request counters
// by status code, per-endpoint latency histograms with fixed buckets, and
// per-index gauges/counters read live from the serving engines at scrape
// time (the engines already count; the scrape just renders their snapshot).

// latencyBuckets are the histogram upper bounds in seconds, spanning
// cache-hit microseconds to stuck-second outliers.
const numLatencyBuckets = 16

var latencyBuckets = [numLatencyBuckets]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// histogram is a fixed-bucket latency histogram safe for concurrent use.
// counts[i] covers observations <= latencyBuckets[i]; the +Inf bucket is
// implicit in total.
type histogram struct {
	counts [numLatencyBuckets]atomic.Int64
	total  atomic.Int64
	sumNS  atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	s := d.Seconds()
	for i, ub := range latencyBuckets {
		if s <= ub {
			h.counts[i].Add(1)
			break
		}
	}
	h.total.Add(1)
	h.sumNS.Add(int64(d))
}

// endpointMetrics tracks one logical endpoint (route pattern, not URL).
type endpointMetrics struct {
	mu      sync.Mutex
	byCode  map[int]*atomic.Int64
	latency histogram
}

func (em *endpointMetrics) code(status int) *atomic.Int64 {
	em.mu.Lock()
	defer em.mu.Unlock()
	c := em.byCode[status]
	if c == nil {
		c = &atomic.Int64{}
		em.byCode[status] = c
	}
	return c
}

// metrics is the daemon-wide registry. Endpoints are registered up front by
// the router, so the scrape path only reads.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointMetrics
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointMetrics)}
}

func (m *metrics) endpoint(name string) *endpointMetrics {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.endpoints[name]
	if em == nil {
		em = &endpointMetrics{byCode: make(map[int]*atomic.Int64)}
		m.endpoints[name] = em
	}
	return em
}

// record counts one finished request on a pre-resolved endpoint. The router
// resolves the *endpointMetrics once at registration, so the request path
// touches only the endpoint's own state (a short mutex for the code counter
// plus atomics), never the registry mutex.
func (em *endpointMetrics) record(status int, d time.Duration) {
	em.code(status).Add(1)
	em.latency.observe(d)
}

// render writes the whole exposition: HTTP metrics from the registry,
// per-index engine counters from the manager's live snapshot, and the
// daemon-level overload gauges. Output is deterministic (sorted label
// values) so tests and diffs stay stable.
func (m *metrics) render(w *strings.Builder, indexes []IndexInfoResponse, draining, swapping bool) {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	ems := make(map[string]*endpointMetrics, len(m.endpoints))
	for name, em := range m.endpoints {
		ems[name] = em
	}
	m.mu.Unlock()
	sort.Strings(names)

	w.WriteString("# HELP p2hd_http_requests_total HTTP requests served, by endpoint and status code.\n")
	w.WriteString("# TYPE p2hd_http_requests_total counter\n")
	for _, name := range names {
		em := ems[name]
		em.mu.Lock()
		codes := make([]int, 0, len(em.byCode))
		for code := range em.byCode {
			codes = append(codes, code)
		}
		sort.Ints(codes)
		for _, code := range codes {
			fmt.Fprintf(w, "p2hd_http_requests_total{endpoint=%q,code=\"%d\"} %d\n",
				name, code, em.byCode[code].Load())
		}
		em.mu.Unlock()
	}

	w.WriteString("# HELP p2hd_http_request_duration_seconds HTTP request latency, by endpoint.\n")
	w.WriteString("# TYPE p2hd_http_request_duration_seconds histogram\n")
	for _, name := range names {
		h := &ems[name].latency
		var cum int64
		for i, ub := range latencyBuckets {
			cum += h.counts[i].Load()
			fmt.Fprintf(w, "p2hd_http_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n",
				name, formatBucket(ub), cum)
		}
		total := h.total.Load()
		fmt.Fprintf(w, "p2hd_http_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", name, total)
		fmt.Fprintf(w, "p2hd_http_request_duration_seconds_sum{endpoint=%q} %g\n",
			name, time.Duration(h.sumNS.Load()).Seconds())
		fmt.Fprintf(w, "p2hd_http_request_duration_seconds_count{endpoint=%q} %d\n", name, total)
	}

	renderIndexMetrics(w, indexes)
	renderDaemonGauges(w, indexes, draining, swapping)
}

// renderDaemonGauges emits the daemon-level overload signals: whether the
// manager is draining or mid-swap (the /healthz 503 conditions) and whether
// any index serves degraded — the gauges an operator alerts on.
func renderDaemonGauges(w *strings.Builder, indexes []IndexInfoResponse, draining, swapping bool) {
	degraded := 0
	for _, ix := range indexes {
		if ix.Stats.BudgetCeiling > 0 {
			degraded = 1
			break
		}
	}
	for _, g := range []struct {
		name, help string
		value      int
	}{
		{"p2hd_draining", "1 while the daemon is draining for shutdown.", b2i(draining)},
		{"p2hd_swapping", "1 while an index hot-swap is retiring its old engine.", b2i(swapping)},
		{"p2hd_degraded", "1 while any index serves under an SLO budget ceiling.", degraded},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.value)
	}
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// formatBucket renders a bucket bound the way Prometheus clients expect
// (shortest decimal form, no exponent for these magnitudes).
func formatBucket(ub float64) string {
	return strconv.FormatFloat(ub, 'g', -1, 64)
}

// indexCounter describes one per-index series derived from the engine stats.
var indexCounters = []struct {
	name, help, typ string
	value           func(IndexInfoResponse) int64
}{
	{"p2hd_index_queries_total", "Searches served, by index.", "counter",
		func(i IndexInfoResponse) int64 { return i.Stats.Queries }},
	{"p2hd_index_batches_total", "Micro-batches dispatched by the serving engine, by index.", "counter",
		func(i IndexInfoResponse) int64 { return i.Stats.Batches }},
	{"p2hd_index_cache_hits_total", "Searches answered from the result cache, by index.", "counter",
		func(i IndexInfoResponse) int64 { return i.Stats.CacheHits }},
	{"p2hd_index_cache_misses_total", "Cacheable searches that ran the index, by index.", "counter",
		func(i IndexInfoResponse) int64 { return i.Stats.CacheMisses }},
	{"p2hd_index_inserts_total", "Successful inserts, by index.", "counter",
		func(i IndexInfoResponse) int64 { return i.Stats.Inserts }},
	{"p2hd_index_deletes_total", "Deletes of live handles, by index.", "counter",
		func(i IndexInfoResponse) int64 { return i.Stats.Deletes }},
	{"p2hd_index_mutation_epoch", "Mutation epoch (0 until the first mutation), by index.", "gauge",
		func(i IndexInfoResponse) int64 { return int64(i.Stats.Epoch) }},
	{"p2hd_index_compactions_total", "Background compaction cycles installed, by index.", "counter",
		func(i IndexInfoResponse) int64 { return i.Stats.Compactions }},
	{"p2hd_index_pending_delta", "Un-folded delta (insert buffer + tombstones) searches pay for, by index.", "gauge",
		func(i IndexInfoResponse) int64 { return int64(i.Stats.PendingDelta) }},
	{"p2hd_index_points", "Indexed (live) points, by index.", "gauge",
		func(i IndexInfoResponse) int64 { return int64(i.N) }},
	{"p2hd_index_bytes", "Index structure memory footprint, by index.", "gauge",
		func(i IndexInfoResponse) int64 { return i.IndexBytes }},
	{"p2hd_index_shed_total", "Searches rejected by admission control (HTTP 429), by index.", "counter",
		func(i IndexInfoResponse) int64 { return i.Stats.Shed }},
	{"p2hd_index_expired_total", "Searches whose deadline fired before index work ran, by index.", "counter",
		func(i IndexInfoResponse) int64 { return i.Stats.Expired }},
	{"p2hd_index_worker_panics_total", "Worker-pool panics isolated without losing the pool, by index.", "counter",
		func(i IndexInfoResponse) int64 { return i.Stats.Panics }},
	{"p2hd_index_degraded_queries_total", "Searches whose budget the degradation ceiling clamped, by index.", "counter",
		func(i IndexInfoResponse) int64 { return i.Stats.DegradedQueries }},
	{"p2hd_index_budget_ceiling", "Current degradation budget ceiling (0: serving exact), by index.", "gauge",
		func(i IndexInfoResponse) int64 { return int64(i.Stats.BudgetCeiling) }},
	{"p2hd_index_backlog", "Admitted-but-unfinished requests, by index.", "gauge",
		func(i IndexInfoResponse) int64 { return i.Stats.Backlog }},
	{"p2hd_index_filter_skipped_nodes_total", "Whole subtrees pruned by predicate pushdown, by index.", "counter",
		func(i IndexInfoResponse) int64 { return i.Stats.FilterSkippedNodes }},
	{"p2hd_index_filter_skipped_points_total", "Points under pushdown-pruned subtrees (post-filter work avoided), by index.", "counter",
		func(i IndexInfoResponse) int64 { return i.Stats.FilterSkippedPoints }},
}

// walCounters are the per-index series that only exist for indexes with a
// write-ahead log attached; indexes without one emit no sample.
var walCounters = []struct {
	name, help, typ string
	value           func(*WALInfoJSON) int64
}{
	{"p2hd_index_wal_records", "Pending write-ahead log records (acknowledged mutations not yet snapshotted), by index.", "gauge",
		func(w *WALInfoJSON) int64 { return w.Records }},
	{"p2hd_index_wal_replayed_records_total", "Write-ahead log records replayed at load time, by index.", "counter",
		func(w *WALInfoJSON) int64 { return int64(w.Replayed) }},
	{"p2hd_index_wal_syncs_total", "Fsyncs the write-ahead log issued (records/syncs is the group-commit amortization), by index.", "counter",
		func(w *WALInfoJSON) int64 { return w.Syncs }},
}

func renderIndexMetrics(w *strings.Builder, indexes []IndexInfoResponse) {
	for _, c := range indexCounters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", c.name, c.help, c.name, c.typ)
		for _, ix := range indexes {
			fmt.Fprintf(w, "%s{index=%q,kind=%q} %d\n", c.name, ix.Name, ix.Kind, c.value(ix))
		}
	}
	for _, c := range walCounters {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", c.name, c.help, c.name, c.typ)
		for _, ix := range indexes {
			if ix.WAL != nil {
				fmt.Fprintf(w, "%s{index=%q,kind=%q} %d\n", c.name, ix.Name, ix.Kind, c.value(ix.WAL))
			}
		}
	}
}
