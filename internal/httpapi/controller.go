package httpapi

import (
	"fmt"
	"time"

	p2h "p2h"
)

// The SLO feedback controller: a daemon-side loop that samples each index's
// completion-latency histogram on a fixed interval and steps the engine's
// budget ceiling (p2h.Server.SetBudgetCeiling) down while the p99 objective
// is breached, restoring it as load recedes. Degradation is bounded (the
// ceiling never drops below MinBudget) and hysteretic (a breach must persist
// for BreachWindows consecutive windows to tighten, and RecoverWindows clean
// windows to relax one step), so a single slow scrape cannot flap the serving
// mode. The state machine per index:
//
//	level 0            exact: no ceiling, Budget flows through untouched
//	level L > 0        degraded: ceiling = max(MinBudget, N >> L)
//
// breach    -> L+1 (halve the ceiling), clear the recover streak
// recovery  -> L-1 (double it), back to exact at level 0
// idle      -> counts as recovery; an unloaded daemon walks back to exact
//
// A step-up is a probe: under genuinely receded load it sticks and the next
// one follows after RecoverWindows clean windows, but a probe that breaches
// right back doubles the clean-window requirement for the next attempt
// (capped at 32x). Under sustained overload the probes therefore become
// exponentially rarer — without that backoff the controller would lift the
// ceiling every RecoverWindows, and the periodic overshoot alone would blow
// the p99 it is defending.

// SLOConfig declares the latency objective and the controller's cadence.
// Zero-valued tuning fields select the documented defaults; TargetP99 is
// required.
type SLOConfig struct {
	// TargetP99 is the objective: the per-index p99 completion latency the
	// controller defends.
	TargetP99 Duration `json:"target_p99"`
	// Interval is the sampling period (zero: 500ms).
	Interval Duration `json:"interval,omitempty"`
	// MinBudget bounds degradation: the ceiling never drops below this many
	// candidate verifications (zero: 64).
	MinBudget int `json:"min_budget,omitempty"`
	// MinWindow is the fewest completions a window needs to be judged; a
	// thinner window is treated as idle (zero: 20).
	MinWindow int `json:"min_window,omitempty"`
	// BreachWindows is how many consecutive breached windows tighten one
	// step (zero: 2); RecoverWindows how many clean ones relax one (zero: 4).
	BreachWindows  int `json:"breach_windows,omitempty"`
	RecoverWindows int `json:"recover_windows,omitempty"`
}

func (c SLOConfig) validate() error {
	if c.TargetP99 <= 0 {
		return fmt.Errorf("%w: slo needs a positive \"target_p99\"", ErrBadConfig)
	}
	return nil
}

// withDefaults resolves the zero-valued tuning fields.
func (c SLOConfig) withDefaults() SLOConfig {
	if c.Interval <= 0 {
		c.Interval = Duration(500 * time.Millisecond)
	}
	if c.MinBudget <= 0 {
		c.MinBudget = 64
	}
	if c.MinWindow <= 0 {
		c.MinWindow = 20
	}
	if c.BreachWindows <= 0 {
		c.BreachWindows = 2
	}
	if c.RecoverWindows <= 0 {
		c.RecoverWindows = 4
	}
	return c
}

// maxDegradeLevel bounds the halving walk; past 30 the shift result is 0 for
// any real index and MinBudget is already the floor.
const maxDegradeLevel = 30

// sloState is the controller's per-index memory.
type sloState struct {
	level    int // degradation step; 0 = exact
	breaches int // consecutive breached windows
	clears   int // consecutive clean (or idle) windows
	prev     p2h.LatencySnapshot
	primed   bool // prev holds a real snapshot
	// Probe backoff: patience is the clean-window streak the next step-up
	// requires (starts at RecoverWindows); probing marks a step-up that has
	// not yet proven itself, sinceUp counts its clean windows so far.
	patience int
	probing  bool
	sinceUp  int
}

// maxPatienceFactor caps the probe backoff at this multiple of
// RecoverWindows, so a long overload cannot push recovery arbitrarily far
// out once load finally recedes.
const maxPatienceFactor = 32

// StartSLO launches the feedback controller; it runs until Close. Starting
// twice or after Close is an error.
func (m *Manager) StartSLO(cfg SLOConfig) error {
	if err := cfg.validate(); err != nil {
		return err
	}
	cfg = cfg.withDefaults()
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrManagerClosed
	}
	if m.sloStop != nil {
		return fmt.Errorf("%w: SLO controller already running", ErrBadConfig)
	}
	m.sloCfg = cfg
	m.sloStop = make(chan struct{})
	m.sloDone = make(chan struct{})
	go m.runSLO(cfg, m.sloStop, m.sloDone)
	return nil
}

// SLO returns the running controller's configuration and whether one runs.
func (m *Manager) SLO() (SLOConfig, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.sloCfg, m.sloStop != nil
}

// stopSLO halts the controller and waits for its loop to exit; idempotent.
// Callers must not hold m.mu (the loop takes it to list indexes).
func (m *Manager) stopSLO() {
	m.mu.Lock()
	stop, done := m.sloStop, m.sloDone
	m.sloStop, m.sloDone = nil, nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// runSLO is the controller loop. All per-index state lives in the local map,
// so the loop is single-threaded by construction; the only cross-goroutine
// effects are SetBudgetCeiling calls on the engines.
func (m *Manager) runSLO(cfg SLOConfig, stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	states := map[string]*sloState{}
	ticker := time.NewTicker(time.Duration(cfg.Interval))
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
		}
		m.mu.RLock()
		entries := make([]*managed, 0, len(m.indexes))
		for _, e := range m.indexes {
			e.refs.Add(1)
			entries = append(entries, e)
		}
		m.mu.RUnlock()
		seen := make(map[string]bool, len(entries))
		for _, e := range entries {
			seen[e.name] = true
			st := states[e.name]
			if st == nil {
				st = &sloState{}
				states[e.name] = st
			}
			m.sloStep(cfg, e, st)
			e.release()
		}
		// Forget unloaded (or swapped-away) indexes: a replacement engine
		// starts exact with fresh counters, so inherited state would judge
		// the wrong histogram.
		for name := range states {
			if !seen[name] {
				delete(states, name)
			}
		}
	}
}

// sloStep judges one index's latest window and steps its ceiling.
func (m *Manager) sloStep(cfg SLOConfig, e *managed, st *sloState) {
	snap := e.srv.Latency()
	if !st.primed {
		st.prev, st.primed = snap, true
		return
	}
	win := snap.Sub(st.prev)
	st.prev = snap
	breached := false
	if win.Total >= int64(cfg.MinWindow) {
		breached = win.Quantile(0.99) > time.Duration(cfg.TargetP99).Seconds()
	}
	if st.patience == 0 {
		st.patience = cfg.RecoverWindows
	}
	// An idle window cannot breach — and counts toward recovery, so a spike
	// that ends abruptly still walks back to exact.
	if breached {
		if st.probing {
			// The last step-up breached before proving itself: the overload
			// is still on, so back the probe cadence off exponentially.
			st.probing = false
			if st.patience < maxPatienceFactor*cfg.RecoverWindows {
				st.patience *= 2
			}
		}
		st.breaches++
		st.clears = 0
		if st.breaches >= cfg.BreachWindows && st.level < maxDegradeLevel {
			st.breaches = 0
			st.level++
			e.srv.SetBudgetCeiling(m.ceilingFor(cfg, e, st.level))
		}
		return
	}
	st.clears++
	st.breaches = 0
	if st.probing {
		st.sinceUp++
		if st.sinceUp >= cfg.RecoverWindows {
			// The probe stuck: load genuinely receded, so further step-ups
			// go back to the normal cadence.
			st.probing = false
			st.patience = cfg.RecoverWindows
		}
	}
	if st.clears >= st.patience && st.level > 0 {
		st.clears = 0
		st.level--
		st.probing, st.sinceUp = true, 0
		if st.level == 0 {
			st.probing = false
			st.patience = cfg.RecoverWindows
			e.srv.SetBudgetCeiling(0)
		} else {
			e.srv.SetBudgetCeiling(m.ceilingFor(cfg, e, st.level))
		}
	}
}

// ceilingFor is the degradation schedule: each level halves the candidate
// budget relative to the index size, floored at MinBudget. Reading N through
// Describe keeps the probe safe against concurrent mutation.
func (m *Manager) ceilingFor(cfg SLOConfig, e *managed, level int) int {
	n, _ := e.srv.Describe()
	c := n >> uint(level)
	if c < cfg.MinBudget {
		c = cfg.MinBudget
	}
	return c
}
