package httpapi

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	p2h "p2h"
	"p2h/internal/faultinject"
)

// chaosFixture is a daemon over one small BC-Tree with caller-chosen engine
// and handler tuning — the knobs the overload tests squeeze. Fault points are
// process-global, so these tests arm them via armFaults (never t.Parallel).
type chaosFixture struct {
	ts      *httptest.Server
	m       *Manager
	queries *p2h.Matrix
}

func newChaosFixture(t *testing.T, opts p2h.ServerOptions, hopts HandlerOptions) *chaosFixture {
	t.Helper()
	dir := t.TempDir()
	data := testMatrix(300, 8, 1)
	queries := p2h.GenerateQueries(data, 8, 2)
	ix, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBCTree, LeafSize: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "trees.p2h")
	if err := p2h.SaveFile(path, ix); err != nil {
		t.Fatal(err)
	}
	m := NewManager(opts, 0)
	if _, _, err := m.Load("trees", IndexConfig{Path: path}, false); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewHandlerWithOptions(m, hopts))
	t.Cleanup(func() {
		ts.Close()
		_ = m.Close(t.Context())
	})
	return &chaosFixture{ts: ts, m: m, queries: queries}
}

// armFaults configures the global fault-injection registry for one test and
// guarantees it is disarmed afterwards, whatever the test does.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	t.Cleanup(faultinject.Reset)
	if err := faultinject.Configure(spec); err != nil {
		t.Fatal(err)
	}
}

// search posts one query and returns the status, Retry-After header value
// (0 when absent) and decoded body.
func (f *chaosFixture) search(t *testing.T, req SearchRequest) (int, int, []byte) {
	t.Helper()
	b, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := f.ts.Client().Post(f.ts.URL+"/v1/indexes/trees/search", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	retryAfter := 0
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if retryAfter, err = strconv.Atoi(ra); err != nil {
			t.Fatalf("unparsable Retry-After %q", ra)
		}
	}
	return resp.StatusCode, retryAfter, body.Bytes()
}

// TestChaosFloodShedsCleanly floods a one-worker, two-slot engine whose
// every search is slowed by an injected fault. The contract under overload:
// excess arrivals get clean 429s with a Retry-After hint, admitted requests
// still finish, the shed counter matches, and the daemon serves normally the
// moment the flood stops.
func TestChaosFloodShedsCleanly(t *testing.T) {
	f := newChaosFixture(t, p2h.ServerOptions{
		Workers: 1, MaxBatch: 1, CacheEntries: -1,
		MaxQueue: 2, MaxQueueDelay: time.Hour, // static limit only
	}, HandlerOptions{})
	armFaults(t, "engine.search=delay:5ms")

	const flood = 32
	var served, shed atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < flood; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, retryAfter, body := f.search(t, SearchRequest{
				Query: f.queries.Row(i % f.queries.N), SearchOptionsJSON: SearchOptionsJSON{K: 1},
			})
			switch status {
			case 200:
				served.Add(1)
			case 429:
				shed.Add(1)
				if retryAfter < 1 {
					t.Errorf("429 without a usable Retry-After (%d)", retryAfter)
				}
				e := unmarshal[ErrorResponse](t, body)
				if e.Code != "overloaded" {
					t.Errorf("429 code %q, want overloaded", e.Code)
				}
			default:
				t.Errorf("status %d (%s)", status, body)
			}
		}(i)
	}
	wg.Wait()
	if shed.Load() == 0 {
		t.Fatalf("flood of %d against a 2-slot queue shed nothing (served %d)", flood, served.Load())
	}
	if served.Load() == 0 {
		t.Fatal("everything was shed; admitted requests must still be served")
	}

	// The engine's own counter agrees with what clients saw, and the shed
	// total surfaces in the Prometheus exposition.
	infos := f.m.List()
	if n := infos[0].Stats.Shed; n != shed.Load() {
		t.Fatalf("Stats.Shed = %d, clients saw %d", n, shed.Load())
	}

	// Flood over: the daemon recovers immediately (reject-newest never
	// wedges the queue).
	faultinject.Reset()
	status, _, body := f.search(t, SearchRequest{
		Query: f.queries.Row(0), SearchOptionsJSON: SearchOptionsJSON{K: 1},
	})
	if status != 200 {
		t.Fatalf("post-flood search: status %d (%s)", status, body)
	}
}

// TestChaosDeadline504 pins the deadline path end to end: a client timeout_ms
// far below the injected search latency must come back 504
// deadline_exceeded, not hang and not 500.
func TestChaosDeadline504(t *testing.T) {
	f := newChaosFixture(t, p2h.ServerOptions{Workers: 1, CacheEntries: -1}, HandlerOptions{})
	armFaults(t, "engine.search=delay:80ms")

	start := time.Now()
	status, _, body := f.search(t, SearchRequest{
		Query: f.queries.Row(0), SearchOptionsJSON: SearchOptionsJSON{K: 1, TimeoutMS: 10},
	})
	wantError(t, status, body, 504, "deadline_exceeded")
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("504 took %v; the deadline did not bound the request", took)
	}

	// A clock-skew fault pushes deadlines into the past: every request
	// expires at the door.
	armFaults(t, "clock.skew=delay:-1h")
	status, _, body = f.search(t, SearchRequest{
		Query: f.queries.Row(0), SearchOptionsJSON: SearchOptionsJSON{K: 1, TimeoutMS: 1000},
	})
	if status != 504 {
		t.Fatalf("skewed clock: status %d (%s), want 504", status, body)
	}
}

// TestHealthzOverloadStates walks /healthz through its non-ok shapes:
// draining and mid-swap report 503 with a machine-readable reason (the load
// balancer contract), and a degraded index flips the degraded flag while the
// daemon stays 200 (degraded is alert-worthy, not route-away-worthy).
func TestHealthzOverloadStates(t *testing.T) {
	f := newChaosFixture(t, p2h.ServerOptions{Workers: 1}, HandlerOptions{})
	get := func() (int, HealthResponse) {
		t.Helper()
		resp, err := f.ts.Client().Get(f.ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h HealthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	if status, h := get(); status != 200 || h.Status != "ok" || h.Degraded {
		t.Fatalf("healthy daemon: status %d, %+v", status, h)
	}

	// Degraded: the SLO ceiling is set on the engine; healthz stays 200 but
	// flags it.
	f.m.mu.RLock()
	srv := f.m.indexes["trees"].srv
	f.m.mu.RUnlock()
	srv.SetBudgetCeiling(100)
	if status, h := get(); status != 200 || !h.Degraded || h.DegradedIndexes != 1 {
		t.Fatalf("degraded daemon: status %d, %+v", status, h)
	}
	srv.SetBudgetCeiling(0)

	// Mid-swap: 503 with reason "swapping".
	f.m.swapping.Add(1)
	if status, h := get(); status != 503 || h.Status != "swapping" || h.Reason == "" {
		t.Fatalf("swapping daemon: status %d, %+v", status, h)
	}
	f.m.swapping.Add(-1)

	// Draining: 503 with reason "draining"; sticky until shutdown.
	f.m.BeginDrain()
	if status, h := get(); status != 503 || h.Status != "draining" || h.Reason == "" {
		t.Fatalf("draining daemon: status %d, %+v", status, h)
	}
}

// TestSLOControllerDegradesAndRecovers runs the feedback loop against real
// traffic: injected search latency breaches a microsecond-scale p99 target,
// the controller steps the budget ceiling down (visible in the index stats
// and /healthz), and once the fault clears and load stops, idle windows walk
// the index back to exact serving.
func TestSLOControllerDegradesAndRecovers(t *testing.T) {
	f := newChaosFixture(t, p2h.ServerOptions{Workers: 2, CacheEntries: -1}, HandlerOptions{})
	if err := f.m.StartSLO(SLOConfig{
		TargetP99:      Duration(time.Millisecond),
		Interval:       Duration(20 * time.Millisecond),
		MinWindow:      3,
		MinBudget:      16,
		BreachWindows:  1,
		RecoverWindows: 2,
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.m.StartSLO(SLOConfig{TargetP99: Duration(time.Second)}); err == nil {
		t.Fatal("second StartSLO did not error")
	}
	armFaults(t, "engine.search=delay:5ms")

	ceiling := func() int {
		t.Helper()
		return f.m.List()[0].Stats.BudgetCeiling
	}

	// Load until the controller engages.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				f.search(t, SearchRequest{
					Query: f.queries.Row((g + i) % f.queries.N), SearchOptionsJSON: SearchOptionsJSON{K: 1},
				})
			}
		}(g)
	}
	deadline := time.Now().Add(10 * time.Second)
	for ceiling() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	engaged := ceiling()
	if engaged != 0 {
		// One search under the ceiling: its exact-budget request gets
		// clamped, which the DegradedQueries counter must record.
		f.search(t, SearchRequest{
			Query: f.queries.Row(0), SearchOptionsJSON: SearchOptionsJSON{K: 1},
		})
	}
	close(stop)
	wg.Wait()
	if engaged == 0 {
		t.Fatal("SLO controller never degraded under a 5ms search vs a 1ms target")
	}
	resp, err := f.ts.Client().Get(f.ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !h.Degraded {
		t.Fatalf("degraded daemon: status %d, %+v (ceiling %d)", resp.StatusCode, h, engaged)
	}

	// Fault gone, load gone: idle windows count as recovery and the ceiling
	// walks back to zero.
	faultinject.Reset()
	deadline = time.Now().Add(10 * time.Second)
	for ceiling() != 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if c := ceiling(); c != 0 {
		t.Fatalf("ceiling stuck at %d after load receded", c)
	}
	if n := f.m.List()[0].Stats.DegradedQueries; n == 0 {
		t.Fatal("no query was ever clamped while degraded")
	}
}
