package httpapi

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	p2h "p2h"
)

func TestDurationJSON(t *testing.T) {
	for in, want := range map[string]time.Duration{
		`"150ms"`: 150 * time.Millisecond,
		`"2s"`:    2 * time.Second,
		`"1m30s"`: 90 * time.Second,
		`250000`:  250 * time.Microsecond, // plain nanoseconds
	} {
		var d Duration
		if err := json.Unmarshal([]byte(in), &d); err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if time.Duration(d) != want {
			t.Errorf("%s -> %v, want %v", in, time.Duration(d), want)
		}
	}
	var d Duration
	if err := json.Unmarshal([]byte(`"soonish"`), &d); err == nil {
		t.Error("bad duration string accepted")
	}
	b, err := json.Marshal(Duration(time.Second))
	if err != nil || string(b) != `"1s"` {
		t.Errorf("marshal: %s %v", b, err)
	}
}

func TestLoadConfig(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p2hd.json")
	doc := `{
		"listen": "127.0.0.1:9999",
		"drain_timeout": "2s",
		"server": {"workers": 3, "max_batch": 8, "max_delay": "200us", "cache_entries": 512},
		"indexes": {
			"trees": {"path": "trees.p2h"},
			"fresh": {"spec": {"kind": "bctree", "leaf_size": 50}, "data": "data.fvecs"}
		}
	}`
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadConfig(path)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Listen != "127.0.0.1:9999" || cfg.DrainTimeoutOrDefault() != 2*time.Second {
		t.Fatalf("config %+v", cfg)
	}
	opts := cfg.Server.Options()
	if opts.Workers != 3 || opts.MaxBatch != 8 || opts.MaxDelay != 200*time.Microsecond || opts.CacheEntries != 512 {
		t.Fatalf("server options %+v", opts)
	}
	if cfg.Indexes["trees"].Path != "trees.p2h" {
		t.Fatalf("trees index %+v", cfg.Indexes["trees"])
	}
	fresh := cfg.Indexes["fresh"]
	if fresh.Spec == nil || fresh.Spec.Kind != p2h.KindBCTree || fresh.Spec.LeafSize != 50 || fresh.Data != "data.fvecs" {
		t.Fatalf("fresh index %+v", fresh)
	}
}

func TestLoadConfigRejectsBadDeclarations(t *testing.T) {
	dir := t.TempDir()
	for name, c := range map[string]struct {
		doc  string
		want error
	}{
		"bad name":         {`{"indexes": {"a/b": {"path": "x.p2h"}}}`, ErrBadName},
		"empty decl":       {`{"indexes": {"a": {}}}`, ErrBadConfig},
		"path and spec":    {`{"indexes": {"a": {"path": "x.p2h", "spec": {"kind": "bctree"}}}}`, ErrBadConfig},
		"wal without path": {`{"indexes": {"a": {"spec": {"kind": "dynamic", "dim": 4}, "wal": true}}}`, ErrBadConfig},
		"sync without wal": {`{"indexes": {"a": {"path": "x.p2h", "wal_sync": "none"}}}`, ErrBadConfig},
		"unknown wal sync": {`{"indexes": {"a": {"path": "x.p2h", "wal": true, "wal_sync": "fsync"}}}`, ErrBadConfig},
	} {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(c.doc), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadConfig(path); !errors.Is(err, c.want) {
			t.Errorf("%s: err %v, want %v", name, err, c.want)
		}
	}
	if _, err := LoadConfig(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing config file accepted")
	}
	bad := filepath.Join(dir, "syntax.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadConfig(bad); err == nil {
		t.Error("syntactically broken config accepted")
	}
	// drainTimeout default applies when unset.
	if (Config{}).DrainTimeoutOrDefault() != DefaultDrainTimeout {
		t.Error("zero drain timeout did not default")
	}
}

func TestLoadConfigRejectsUnknownKeys(t *testing.T) {
	dir := t.TempDir()
	for name, doc := range map[string]string{
		"typo'd top-level": `{"drain_timout": "30s"}`,
		"typo'd server":    `{"server": {"worker": 8}}`,
		"typo'd index":     `{"indexes": {"a": {"pathh": "x.p2h"}}}`,
	} {
		path := filepath.Join(dir, "cfg.json")
		if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadConfig(path); err == nil {
			t.Errorf("%s: accepted silently", name)
		}
	}
}
