package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	p2h "p2h"
	"p2h/internal/core"
	"p2h/internal/faultinject"
)

// maxBodyBytes bounds any request body; a batch of 100k Glove-sized queries
// fits comfortably, a runaway upload does not.
const maxBodyBytes = 64 << 20

// batchFanout bounds the goroutines submitting one HTTP batch into the
// serving engine. The engine micro-batches whatever is concurrently
// submitted, so this only needs to exceed a worker pool's appetite, not the
// batch size.
const batchFanout = 64

// DefaultMaxTimeout caps client timeout_ms values and backstops requests
// that name none, so every search the daemon dispatches carries a deadline —
// a stuck traversal can hold a connection, never the worker pool forever.
const DefaultMaxTimeout = 30 * time.Second

// HandlerOptions tunes the HTTP layer's request-deadline policy.
type HandlerOptions struct {
	// MaxTimeout caps any client timeout_ms and bounds requests without one
	// (non-positive: DefaultMaxTimeout).
	MaxTimeout time.Duration
	// DefaultTimeout is the deadline applied when the request names no
	// timeout_ms (non-positive: MaxTimeout).
	DefaultTimeout time.Duration
}

// API serves the p2hd HTTP surface over a Manager.
type API struct {
	m              *Manager
	metrics        *metrics
	started        time.Time
	maxTimeout     time.Duration
	defaultTimeout time.Duration
}

// NewHandler builds the daemon's HTTP handler over m:
//
//	GET    /healthz                           liveness + index count
//	GET    /metrics                           Prometheus text format
//	GET    /v1/indexes                        list indexes
//	GET    /v1/indexes/{name}                 one index's info + stats
//	POST   /v1/indexes/{name}                 hot-load (or, with replace, hot-swap) an index
//	DELETE /v1/indexes/{name}                 unload an index
//	POST   /v1/indexes/{name}/search          one query
//	POST   /v1/indexes/{name}/search_batch    many queries, shared options
//	POST   /v1/indexes/{name}/insert          add a point (mutable indexes)
//	DELETE /v1/indexes/{name}/points/{handle} delete a point (mutable indexes)
//	POST   /v1/indexes/{name}/snapshot        persist atomically to a server-side path
//
// Every response is JSON except /metrics; errors use the ErrorResponse
// envelope with a stable machine-readable code.
func NewHandler(m *Manager) http.Handler { return NewHandlerWithOptions(m, HandlerOptions{}) }

// NewHandlerWithOptions is NewHandler with an explicit request-deadline
// policy (see HandlerOptions).
func NewHandlerWithOptions(m *Manager, opts HandlerOptions) http.Handler {
	if opts.MaxTimeout <= 0 {
		opts.MaxTimeout = DefaultMaxTimeout
	}
	if opts.DefaultTimeout <= 0 || opts.DefaultTimeout > opts.MaxTimeout {
		opts.DefaultTimeout = opts.MaxTimeout
	}
	a := &API{
		m: m, metrics: newMetrics(), started: time.Now(),
		maxTimeout: opts.MaxTimeout, defaultTimeout: opts.DefaultTimeout,
	}
	mux := http.NewServeMux()
	route := func(pattern, endpoint string, h func(http.ResponseWriter, *http.Request)) {
		// Resolving the endpoint here pre-registers it (the scrape lists it
		// from the start) and keeps the registry mutex off the request path.
		mux.HandleFunc(pattern, instrument(a.metrics.endpoint(endpoint), h))
	}
	route("GET /healthz", "healthz", a.handleHealthz)
	route("GET /metrics", "metrics", a.handleMetrics)
	route("GET /v1/indexes", "list", a.handleList)
	route("GET /v1/indexes/{name}", "info", a.handleInfo)
	route("POST /v1/indexes/{name}", "load", a.handleLoad)
	route("DELETE /v1/indexes/{name}", "unload", a.handleUnload)
	route("POST /v1/indexes/{name}/search", "search", a.handleSearch)
	route("POST /v1/indexes/{name}/search_batch", "search_batch", a.handleSearchBatch)
	route("POST /v1/indexes/{name}/insert", "insert", a.handleInsert)
	route("DELETE /v1/indexes/{name}/points/{handle}", "delete_point", a.handleDeletePoint)
	route("POST /v1/indexes/{name}/snapshot", "snapshot", a.handleSnapshot)
	route("GET /v1/indexes/{name}/container", "container", a.handleContainer)
	route("POST /v1/indexes/{name}/restore", "restore", a.handleRestore)
	return mux
}

// statusRecorder captures the status code a handler writes.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with its endpoint's request counter and
// latency histogram.
func instrument(em *endpointMetrics, h func(http.ResponseWriter, *http.Request)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r)
		em.record(rec.status, time.Since(start))
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

// searchContext derives one request's deadline: the client's timeout_ms,
// else the daemon default, both capped by the daemon max — so every search
// dispatched into an engine is deadline-bounded. The context also inherits
// the connection's (a client that hangs up cancels its in-flight work). The
// clock.skew failpoint, when armed, shifts the computed deadline — the chaos
// hook for "the daemon's clock is wrong" without touching the real clock.
func (a *API) searchContext(r *http.Request, timeoutMS int) (context.Context, context.CancelFunc) {
	d := time.Duration(timeoutMS) * time.Millisecond
	if d <= 0 {
		d = a.defaultTimeout
	}
	if d > a.maxTimeout {
		d = a.maxTimeout
	}
	if faultinject.Armed() {
		d += faultinject.Delay("clock.skew")
	}
	return context.WithDeadline(r.Context(), time.Now().Add(d))
}

// errorStatus maps an error onto an HTTP status and a stable wire code.
func errorStatus(err error) (int, string) {
	switch {
	case errors.Is(err, p2h.ErrOverloaded):
		return http.StatusTooManyRequests, "overloaded"
	case errors.Is(err, p2h.ErrDraining):
		return http.StatusServiceUnavailable, "draining"
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded"
	case errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout, "canceled"
	case errors.Is(err, ErrIndexNotFound):
		return http.StatusNotFound, "index_not_found"
	case errors.Is(err, ErrIndexExists):
		return http.StatusConflict, "index_exists"
	case errors.Is(err, p2h.ErrImmutable):
		return http.StatusMethodNotAllowed, "immutable"
	case errors.Is(err, p2h.ErrUnknownKind):
		return http.StatusBadRequest, "unknown_kind"
	case errors.Is(err, core.ErrDimMismatch):
		return http.StatusBadRequest, "dim_mismatch"
	case errors.Is(err, core.ErrZeroNormal):
		return http.StatusBadRequest, "zero_normal"
	case errors.Is(err, p2h.ErrFormat):
		return http.StatusBadRequest, "bad_container"
	case errors.Is(err, errBodyTooLarge):
		return http.StatusRequestEntityTooLarge, "body_too_large"
	case errors.Is(err, ErrBadName), errors.Is(err, ErrBadConfig), errors.Is(err, errBadRequest):
		return http.StatusBadRequest, "bad_request"
	case errors.Is(err, fs.ErrNotExist):
		return http.StatusBadRequest, "file_not_found"
	case errors.Is(err, ErrManagerClosed):
		return http.StatusServiceUnavailable, "shutting_down"
	default:
		return http.StatusInternalServerError, "internal"
	}
}

func (a *API) fail(w http.ResponseWriter, err error) {
	var oe *p2h.OverloadError
	if errors.As(err, &oe) {
		// Whole seconds, rounded up: Retry-After's wire granularity. A
		// sub-second suggestion still reads "1" — retrying sooner than the
		// engine's own estimate only feeds the backlog being shed.
		secs := int(math.Ceil(oe.RetryAfter.Seconds()))
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	status, code := errorStatus(err)
	writeJSON(w, status, ErrorResponse{Error: err.Error(), Code: code})
}

// decodeBody strictly decodes one JSON document into v. An over-limit body
// surfaces as its own error so clients can tell "shrink the batch" (413)
// from "malformed JSON" (400).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return fmt.Errorf("%w: body exceeds %d bytes", errBodyTooLarge, tooBig.Limit)
		}
		return fmt.Errorf("%w: decoding body: %v", errBadRequest, err)
	}
	return nil
}

func (a *API) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := HealthResponse{
		Status:        "ok",
		UptimeSeconds: int64(time.Since(a.started).Seconds()),
	}
	status := http.StatusOK
	switch {
	case a.m.Draining():
		// Load balancers must stop routing before the listener closes;
		// requests that still arrive are served until the drain completes.
		resp.Status = "draining"
		resp.Reason = "shutting down: drain begun, in-flight requests completing"
		status = http.StatusServiceUnavailable
	case a.m.Swapping():
		resp.Status = "swapping"
		resp.Reason = "index hot-swap in progress: old engine draining"
		status = http.StatusServiceUnavailable
	}
	for _, info := range a.m.List() {
		resp.Indexes++
		if info.Stats.BudgetCeiling > 0 {
			resp.Degraded = true
			resp.DegradedIndexes++
		}
		if info.WAL != nil {
			resp.WALIndexes++
			resp.WALReplayedRecords += info.WAL.Replayed
			resp.WALPendingRecords += info.WAL.Records
		}
	}
	writeJSON(w, status, resp)
}

func (a *API) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	a.metrics.render(&b, a.m.List(), a.m.Draining(), a.m.Swapping())
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

func (a *API) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ListResponse{Indexes: a.m.List()})
}

func (a *API) handleInfo(w http.ResponseWriter, r *http.Request) {
	info, err := a.m.Get(r.PathValue("name"))
	if err != nil {
		a.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (a *API) handleLoad(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	var req LoadRequest
	if err := decodeBody(w, r, &req); err != nil {
		a.fail(w, err)
		return
	}
	info, replaced, err := a.m.Load(name, req.IndexConfig, req.Replace)
	if err != nil {
		a.fail(w, err)
		return
	}
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

func (a *API) handleUnload(w http.ResponseWriter, r *http.Request) {
	drained, err := a.m.Unload(r.PathValue("name"))
	if err != nil {
		a.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, UnloadResponse{Unloaded: true, Drained: drained})
}

func (a *API) handleSearch(w http.ResponseWriter, r *http.Request) {
	e, err := a.m.acquire(r.PathValue("name"))
	if err != nil {
		a.fail(w, err)
		return
	}
	defer e.release()
	var req SearchRequest
	if err := decodeBody(w, r, &req); err != nil {
		a.fail(w, err)
		return
	}
	q, err := req.query(e.dim)
	if err != nil {
		a.fail(w, err)
		return
	}
	opts, err := req.toOptions()
	if err != nil {
		a.fail(w, err)
		return
	}
	ctx, cancel := a.searchContext(r, req.TimeoutMS)
	defer cancel()
	res, stats, err := e.srv.SearchCtx(ctx, q, opts)
	if err != nil {
		// An expired deadline answers 504 even when partial results exist:
		// a truncated top-k is not the top-k the client asked for, and a
		// clean error is what its hedging logic keys on.
		a.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SearchResponse{Results: toResultsJSON(res), Stats: toStatsJSON(stats)})
}

func (a *API) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	e, err := a.m.acquire(r.PathValue("name"))
	if err != nil {
		a.fail(w, err)
		return
	}
	defer e.release()
	var req BatchSearchRequest
	if err := decodeBody(w, r, &req); err != nil {
		a.fail(w, err)
		return
	}
	if len(req.Queries) == 0 {
		a.fail(w, fmt.Errorf("%w: empty \"queries\"", errBadRequest))
		return
	}
	opts, err := req.toOptions()
	if err != nil {
		a.fail(w, err)
		return
	}
	// Validate everything before submitting anything, so a bad row cannot
	// leave the batch half-executed.
	for i, q := range req.Queries {
		if _, err := core.CheckQuery(q, e.dim); err != nil {
			a.fail(w, fmt.Errorf("query %d: %w", i, err))
			return
		}
	}

	// Submit the whole batch concurrently: the serving engine's dispatcher
	// coalesces concurrent submissions into micro-batches and runs them
	// through the index's zero-allocation batched traversal, so the fan-out
	// here is what engages the shared-arena path.
	//
	// The whole batch shares one deadline. A member the engine sheds is
	// retried after the engine's own Retry-After estimate — the members of
	// one admitted HTTP request co-arrived, so backing off self-paces the
	// fan-out to the engine's capacity instead of failing a half-executed
	// batch — while the deadline bounds the total wait. Any terminal error
	// (deadline expired, engine draining) aborts the batch: the response is
	// one JSON document, all-or-nothing.
	ctx, cancel := a.searchContext(r, req.TimeoutMS)
	defer cancel()
	results := make([][]core.Result, len(req.Queries))
	stats := make([]core.Stats, len(req.Queries))
	workers := batchFanout
	if workers > len(req.Queries) {
		workers = len(req.Queries)
	}
	var abortMu sync.Mutex
	var abortErr error
	abort := func(err error) {
		abortMu.Lock()
		if abortErr == nil {
			abortErr = err
		}
		abortMu.Unlock()
	}
	aborted := func() bool {
		abortMu.Lock()
		defer abortMu.Unlock()
		return abortErr != nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(req.Queries) || aborted() {
					return
				}
				for {
					res, st, err := e.srv.SearchCtx(ctx, req.Queries[i], opts)
					if err == nil {
						results[i], stats[i] = res, st
						break
					}
					var oe *p2h.OverloadError
					if !errors.As(err, &oe) {
						abort(err)
						return
					}
					select {
					case <-ctx.Done():
						abort(ctx.Err())
						return
					case <-time.After(oe.RetryAfter):
					}
				}
			}
		}()
	}
	wg.Wait()
	if aborted() {
		a.fail(w, abortErr)
		return
	}

	resp := BatchSearchResponse{Results: make([][]ResultJSON, len(results))}
	var agg core.Stats
	for i, res := range results {
		resp.Results[i] = toResultsJSON(res)
		agg.Add(stats[i])
	}
	resp.Stats = toStatsJSON(agg)
	writeJSON(w, http.StatusOK, resp)
}

func (a *API) handleInsert(w http.ResponseWriter, r *http.Request) {
	e, err := a.m.acquire(r.PathValue("name"))
	if err != nil {
		a.fail(w, err)
		return
	}
	defer e.release()
	var req InsertRequest
	if err := decodeBody(w, r, &req); err != nil {
		a.fail(w, err)
		return
	}
	if len(req.Point) != e.dim {
		a.fail(w, fmt.Errorf("%w: point has dimension %d, index needs %d",
			core.ErrDimMismatch, len(req.Point), e.dim))
		return
	}
	var h int32
	if req.Attrs != nil && !req.Attrs.Empty() {
		h, err = e.srv.InsertWithAttrs(req.Point, *req.Attrs)
	} else {
		h, err = e.srv.Insert(req.Point)
	}
	if err != nil {
		a.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, InsertResponse{Handle: h})
}

func (a *API) handleDeletePoint(w http.ResponseWriter, r *http.Request) {
	e, err := a.m.acquire(r.PathValue("name"))
	if err != nil {
		a.fail(w, err)
		return
	}
	defer e.release()
	h64, err := strconv.ParseInt(r.PathValue("handle"), 10, 32)
	if err != nil {
		a.fail(w, fmt.Errorf("%w: bad handle %q", errBadRequest, r.PathValue("handle")))
		return
	}
	ok, err := e.srv.Delete(int32(h64))
	if err != nil {
		a.fail(w, err)
		return
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, ErrorResponse{
			Error: fmt.Sprintf("handle %d is not live", h64), Code: "handle_not_found",
		})
		return
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Deleted: true, Handle: int32(h64)})
}

// handleContainer streams a fresh atomic snapshot of the index as raw
// container bytes — the wire half of snapshot shipping: a cluster router
// GETs this on a shard's primary and POSTs the bytes to /restore on the
// replicas. Response headers carry the point count and mutation epoch of
// the streamed cut (X-P2H-Points, X-P2H-Epoch) so the shipper can record
// the version it replicated without re-parsing the container.
//
// An index with a write-ahead log snapshots to its own canonical container
// path (the snapshot truncates the log, so writing anywhere else would
// orphan the truncated records); an index without one snapshots to a
// temporary file in the manager's spool directory, removed after the
// stream.
func (a *API) handleContainer(w http.ResponseWriter, r *http.Request) {
	e, err := a.m.acquire(r.PathValue("name"))
	if err != nil {
		a.fail(w, err)
		return
	}
	defer e.release()
	if persistable, buildOnly, err := p2h.KindIsPersistable(e.kind); err == nil && !persistable {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("index kind %q is build-only: %s", e.kind, buildOnly),
			Code:  "not_persistable",
		})
		return
	}
	path := e.cfg.Path
	if e.wal == nil || path == "" {
		f, err := os.CreateTemp(a.m.spoolDir(), ".p2hd-container-*.p2h")
		if err != nil {
			a.fail(w, err)
			return
		}
		path = f.Name()
		f.Close()
		defer os.Remove(path)
	}
	// Snapshot first, then read the stats: the exclusive cut inside Snapshot
	// means the streamed bytes are at least as new as the n/epoch reported.
	size, err := e.srv.Snapshot(path)
	if err != nil {
		a.fail(w, err)
		return
	}
	n, _ := e.srv.Describe()
	f, err := os.Open(path)
	if err != nil {
		a.fail(w, err)
		return
	}
	defer f.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.Header().Set("X-P2H-Kind", e.kind)
	w.Header().Set("X-P2H-Points", strconv.Itoa(n))
	w.Header().Set("X-P2H-Epoch", strconv.FormatUint(e.srv.Stats().Epoch, 10))
	_, _ = io.Copy(w, f)
}

// maxContainerBytes bounds a restore upload; far above any container this
// daemon could serve from memory, far below a runaway stream.
const maxContainerBytes = 8 << 30

// handleRestore accepts raw container bytes, spools them to the manager's
// spool directory and hot-swaps them in under the request's index name (a
// fresh name loads rather than swaps). This is the receiving half of
// snapshot shipping: the sender is any p2h.Save container — typically the
// /container stream of the shard's primary. A container that fails to load
// leaves the currently-served index untouched and the spool file removed;
// a successful swap removes the spool file of the index it replaced.
func (a *API) handleRestore(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	if err := checkName(name); err != nil {
		a.fail(w, err)
		return
	}
	spool := a.m.spoolDir()
	f, err := os.CreateTemp(spool, "p2hd-restore-"+name+"-*.p2h")
	if err != nil {
		a.fail(w, err)
		return
	}
	path := f.Name()
	_, err = io.Copy(f, http.MaxBytesReader(w, r.Body, maxContainerBytes))
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(path)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			a.fail(w, fmt.Errorf("%w: container exceeds %d bytes", errBodyTooLarge, tooBig.Limit))
			return
		}
		a.fail(w, err)
		return
	}
	// Remember what the swap replaces so its spool file can be reclaimed;
	// only files this handler created (inside the spool dir) are touched.
	oldPath := ""
	if old, err := a.m.Get(name); err == nil {
		oldPath = old.Source.Path
	}
	info, replaced, err := a.m.Load(name, IndexConfig{Path: path}, true)
	if err != nil {
		os.Remove(path)
		a.fail(w, err)
		return
	}
	if replaced && oldPath != "" && oldPath != path && filepath.Dir(oldPath) == filepath.Dir(path) {
		if base := filepath.Base(oldPath); strings.HasPrefix(base, "p2hd-restore-") {
			os.Remove(oldPath)
		}
	}
	status := http.StatusCreated
	if replaced {
		status = http.StatusOK
	}
	writeJSON(w, status, info)
}

func (a *API) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	e, err := a.m.acquire(r.PathValue("name"))
	if err != nil {
		a.fail(w, err)
		return
	}
	defer e.release()
	var req SnapshotRequest
	if err := decodeBody(w, r, &req); err != nil {
		a.fail(w, err)
		return
	}
	if req.Path == "" {
		a.fail(w, fmt.Errorf("%w: missing \"path\"", errBadRequest))
		return
	}
	// A build-only kind cannot snapshot by design; report it as the
	// client-side condition it is, not a daemon fault.
	if persistable, buildOnly, err := p2h.KindIsPersistable(e.kind); err == nil && !persistable {
		writeJSON(w, http.StatusBadRequest, ErrorResponse{
			Error: fmt.Sprintf("index kind %q is build-only: %s", e.kind, buildOnly),
			Code:  "not_persistable",
		})
		return
	}
	n, err := e.srv.Snapshot(req.Path)
	if err != nil {
		a.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{Path: req.Path, Bytes: n})
}
