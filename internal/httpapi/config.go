package httpapi

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"time"

	p2h "p2h"
)

// Duration is a time.Duration that JSON-decodes from a Go duration string
// ("150ms", "2s") or a plain number of nanoseconds, so config files read
// naturally.
type Duration time.Duration

// UnmarshalJSON implements json.Unmarshaler.
func (d *Duration) UnmarshalJSON(b []byte) error {
	if len(b) > 0 && b[0] == '"' {
		var s string
		if err := json.Unmarshal(b, &s); err != nil {
			return err
		}
		v, err := time.ParseDuration(s)
		if err != nil {
			return err
		}
		*d = Duration(v)
		return nil
	}
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return fmt.Errorf("duration must be a string like \"100ms\" or nanoseconds: %w", err)
	}
	*d = Duration(n)
	return nil
}

// MarshalJSON implements json.Marshaler.
func (d Duration) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// IndexConfig declares one named index: either a saved container to open
// (Path) or a Spec to build, optionally over an fvecs data file (Data; a
// dynamic Spec with Dim set may start empty). Exactly one of Path and Spec
// must be set.
type IndexConfig struct {
	// Path names a .p2h container written by p2h.Save (or a legacy bare
	// tree stream); the container records its own kind and tuning.
	Path string `json:"path,omitempty"`
	// Spec declares an index to build, exactly as p2h.New takes it.
	Spec *p2h.Spec `json:"spec,omitempty"`
	// Data is the fvecs file the Spec is built over.
	Data string `json:"data,omitempty"`
	// WAL attaches a write-ahead log at Path + ".wal": pending records are
	// replayed on load and every acknowledged mutation is journaled, so a
	// daemon crash loses nothing. Requires Path (durability needs a
	// container to recover into) and a dynamic container.
	WAL bool `json:"wal,omitempty"`
	// WALSync is the log's fsync policy, "always" (default) or "none".
	WALSync string `json:"wal_sync,omitempty"`
}

func (c IndexConfig) validate() error {
	switch {
	case c.Path != "" && (c.Spec != nil || c.Data != ""):
		return fmt.Errorf("%w: \"path\" excludes \"spec\" and \"data\"", ErrBadConfig)
	case c.Path == "" && c.Spec == nil:
		return fmt.Errorf("%w: need \"path\" or \"spec\"", ErrBadConfig)
	case c.WAL && c.Path == "":
		return fmt.Errorf("%w: \"wal\" requires \"path\"", ErrBadConfig)
	case !c.WAL && c.WALSync != "":
		return fmt.Errorf("%w: \"wal_sync\" without \"wal\"", ErrBadConfig)
	}
	if c.WAL {
		if _, err := p2h.ParseWALSyncMode(c.WALSync); err != nil {
			return fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
	}
	return nil
}

// ServerConfig tunes the per-index serving engines; zero values select the
// p2h.ServerOptions defaults.
type ServerConfig struct {
	Workers      int      `json:"workers,omitempty"`
	MaxBatch     int      `json:"max_batch,omitempty"`
	MaxDelay     Duration `json:"max_delay,omitempty"`
	CacheEntries int      `json:"cache_entries,omitempty"`
	// BackgroundCompaction moves dynamic indexes' delta absorption off the
	// mutation path: the tree is rebuilt by a background goroutine and
	// hot-swapped in, instead of rebuilding inline inside an Insert/Delete.
	BackgroundCompaction bool `json:"background_compaction,omitempty"`
	// MaxQueue statically caps each index's admitted-but-unfinished requests
	// (zero: 4*workers*max_batch; negative: admission control off).
	MaxQueue int `json:"max_queue,omitempty"`
	// MaxQueueDelay bounds the queueing delay admission control accepts
	// (zero: 50ms); when the backlog's expected drain time exceeds it, new
	// deadline-carrying searches are shed with 429 + Retry-After.
	MaxQueueDelay Duration `json:"max_queue_delay,omitempty"`
}

// Options converts to the p2h serving options.
func (c ServerConfig) Options() p2h.ServerOptions {
	return p2h.ServerOptions{
		Workers:              c.Workers,
		MaxBatch:             c.MaxBatch,
		MaxDelay:             time.Duration(c.MaxDelay),
		CacheEntries:         c.CacheEntries,
		BackgroundCompaction: c.BackgroundCompaction,
		MaxQueue:             c.MaxQueue,
		MaxQueueDelay:        time.Duration(c.MaxQueueDelay),
	}
}

// DefaultDrainTimeout bounds how long unload, hot-swap retirement and
// shutdown wait for in-flight queries before abandoning the old engine.
const DefaultDrainTimeout = 10 * time.Second

// Config is the p2hd daemon configuration: the listen address, engine
// tuning, the drain bound, and the indexes to stand up at startup.
type Config struct {
	// Listen is the address the daemon binds ("127.0.0.1:8080"; the p2hd
	// -listen flag overrides it).
	Listen string `json:"listen,omitempty"`
	// DrainTimeout bounds shutdown and unload waits (zero: 10s).
	DrainTimeout Duration `json:"drain_timeout,omitempty"`
	// MaxTimeout caps any client timeout_ms and backstops requests that name
	// none (zero: 30s) — every search the daemon runs carries a deadline.
	MaxTimeout Duration `json:"max_timeout,omitempty"`
	// DefaultTimeout is the deadline applied to requests without timeout_ms
	// (zero: MaxTimeout).
	DefaultTimeout Duration `json:"default_timeout,omitempty"`
	// Server tunes every index's serving engine.
	Server ServerConfig `json:"server,omitempty"`
	// SLO, when present, runs the latency feedback controller: per-index p99
	// is sampled every interval and the budget ceiling stepped down (bounded,
	// with hysteresis) while the objective is breached — approximate-but-fast
	// under spike, exact again as load recedes.
	SLO *SLOConfig `json:"slo,omitempty"`
	// Indexes maps index names to their declarations.
	Indexes map[string]IndexConfig `json:"indexes,omitempty"`
}

// LoadConfig reads and validates a JSON config file. Unknown fields are
// rejected — a typo'd tuning key must fail startup, not silently run with
// defaults — matching the strictness of the HTTP admin endpoints.
func LoadConfig(path string) (Config, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Config{}, err
	}
	var cfg Config
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("httpapi: config %s: %w", path, err)
	}
	for name, ic := range cfg.Indexes {
		if err := checkName(name); err != nil {
			return Config{}, fmt.Errorf("httpapi: config %s: index %q: %w", path, name, err)
		}
		if err := ic.validate(); err != nil {
			return Config{}, fmt.Errorf("httpapi: config %s: index %q: %w", path, name, err)
		}
	}
	if cfg.SLO != nil {
		if err := cfg.SLO.validate(); err != nil {
			return Config{}, fmt.Errorf("httpapi: config %s: %w", path, err)
		}
	}
	return cfg, nil
}

// DrainTimeoutOrDefault resolves the configured drain bound, applying
// DefaultDrainTimeout when unset — the one place the default is decided.
func (c Config) DrainTimeoutOrDefault() time.Duration {
	if c.DrainTimeout <= 0 {
		return DefaultDrainTimeout
	}
	return time.Duration(c.DrainTimeout)
}

// HandlerOptions resolves the config's request-deadline policy for
// NewHandlerWithOptions.
func (c Config) HandlerOptions() HandlerOptions {
	return HandlerOptions{
		MaxTimeout:     time.Duration(c.MaxTimeout),
		DefaultTimeout: time.Duration(c.DefaultTimeout),
	}
}
