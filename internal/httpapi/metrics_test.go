package httpapi

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	var h histogram
	h.observe(50 * time.Microsecond)  // <= 0.0001
	h.observe(300 * time.Microsecond) // <= 0.0005
	h.observe(30 * time.Second)       // only +Inf
	if h.total.Load() != 3 {
		t.Fatalf("total %d", h.total.Load())
	}
	if h.counts[0].Load() != 1 {
		t.Fatalf("first bucket %d", h.counts[0].Load())
	}
	var bucketed int64
	for i := range h.counts {
		bucketed += h.counts[i].Load()
	}
	if bucketed != 2 {
		t.Fatalf("bucketed %d, want 2 (one observation beyond the last bound)", bucketed)
	}
	wantSum := (50*time.Microsecond + 300*time.Microsecond + 30*time.Second)
	if h.sumNS.Load() != int64(wantSum) {
		t.Fatalf("sum %d, want %d", h.sumNS.Load(), int64(wantSum))
	}
}

func TestMetricsRenderShape(t *testing.T) {
	m := newMetrics()
	m.endpoint("search") // pre-registered, no traffic: histogram renders zeroed
	m.endpoint("insert").record(200, 2*time.Millisecond)
	m.endpoint("insert").record(405, 100*time.Microsecond)

	var b strings.Builder
	m.render(&b, []IndexInfoResponse{{
		Name: "a", Kind: "bctree", N: 42, IndexBytes: 1000,
		Stats: ServerStatsJSON{Queries: 7, CacheHits: 3},
	}}, false, true)
	text := b.String()
	for _, want := range []string{
		`p2hd_http_requests_total{endpoint="insert",code="200"} 1`,
		`p2hd_http_requests_total{endpoint="insert",code="405"} 1`,
		`p2hd_http_request_duration_seconds_bucket{endpoint="insert",le="0.0025"} 2`,
		`p2hd_http_request_duration_seconds_bucket{endpoint="insert",le="+Inf"} 2`,
		`p2hd_http_request_duration_seconds_count{endpoint="insert"} 2`,
		`p2hd_http_request_duration_seconds_count{endpoint="search"} 0`,
		`p2hd_index_queries_total{index="a",kind="bctree"} 7`,
		`p2hd_index_cache_hits_total{index="a",kind="bctree"} 3`,
		`p2hd_index_points{index="a",kind="bctree"} 42`,
		`p2hd_index_bytes{index="a",kind="bctree"} 1000`,
		`p2hd_index_shed_total{index="a",kind="bctree"} 0`,
		`p2hd_index_budget_ceiling{index="a",kind="bctree"} 0`,
		"p2hd_draining 0",
		"p2hd_swapping 1",
		"p2hd_degraded 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing %q\n%s", want, text)
		}
	}
	// Buckets are cumulative: the 100µs observation is already counted at
	// every wider bound.
	if !strings.Contains(text, `p2hd_http_request_duration_seconds_bucket{endpoint="insert",le="0.00025"} 1`) {
		t.Errorf("bucket counts not cumulative:\n%s", text)
	}
}
