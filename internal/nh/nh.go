// Package nh implements NH (Nearest Hyperplane hash), the first of the two
// state-of-the-art hashing baselines of Huang et al. [30] the paper compares
// against.
//
// NH lifts data and query through the asymmetric tensor transformation
// (internal/transform), appends a norm-completion coordinate so that every
// transformed data point sits on a sphere of radius sqrt(M), and negates the
// transformed query, converting P2HNNS into a Euclidean nearest neighbor
// search that the query-aware LSH substrate (internal/lsh) answers by
// collision counting. The suggested randomized-sampling variant is used:
// lambda sampled monomials instead of the full d(d+1)/2, trading the
// theoretical guarantee for practical indexing cost, exactly as the paper
// configures NH in its experiments.
package nh

import (
	"fmt"
	"math"
	"time"

	"p2h/internal/core"
	"p2h/internal/lsh"
	"p2h/internal/transform"
	"p2h/internal/vec"
)

// Config parameterizes NH.
type Config struct {
	// Lambda is the sampled transform dimension (the paper sweeps
	// lambda in {d, 2d, 4d, 8d}). Zero selects 2d.
	Lambda int
	// M is the number of hash projections (the paper's hash table count;
	// its experiments report m=128). Zero selects 64.
	M int
	// L is the collision count a point needs to become a candidate.
	// Zero selects 2.
	L int
	// FullTransform switches to the exact d(d+1)/2-dimensional tensor
	// lift instead of lambda sampled monomials — the variant without
	// randomized sampling whose Omega(d^2) indexing blow-up the paper's
	// Section I quantifies. Lambda is ignored when set. Use only for
	// small d.
	FullTransform bool
	// Seed drives the sampled transform and the projections.
	Seed int64
}

func (c Config) normalized(d int) Config {
	if c.Lambda <= 0 {
		c.Lambda = 2 * d
	}
	if c.M <= 0 {
		c.M = 64
	}
	if c.L <= 0 {
		c.L = 2
	}
	return c
}

// Index is a built NH index.
type Index struct {
	data      *vec.Matrix // lifted originals, for candidate verification
	tr        transform.Transform
	hash      *lsh.Index
	maxSqNorm float64 // M: max ||f(x)||^2 over the data set
	cfg       Config
}

// Build transforms every lifted data point, completes its norm to sqrt(M),
// and hashes the result. The transformed matrix is only needed during
// construction; queries verify candidates against the original vectors.
func Build(data *vec.Matrix, cfg Config) *Index {
	if data == nil || data.N == 0 {
		panic("nh: empty data")
	}
	cfg = cfg.normalized(data.D)
	var tr transform.Transform
	if cfg.FullTransform {
		tr = transform.NewFull(data.D)
	} else {
		tr = transform.NewSampled(data.D, cfg.Lambda, cfg.Seed)
	}

	fm := transform.DataMatrix(tr, data)
	maxSq := 0.0
	sq := make([]float64, fm.N)
	for i := 0; i < fm.N; i++ {
		sq[i] = vec.SqNorm(fm.Row(i))
		if sq[i] > maxSq {
			maxSq = sq[i]
		}
	}
	aug := vec.NewMatrix(fm.N, fm.D+1)
	for i := 0; i < fm.N; i++ {
		row := aug.Row(i)
		copy(row, fm.Row(i))
		row[fm.D] = float32(math.Sqrt(math.Max(0, maxSq-sq[i])))
	}

	return &Index{
		data:      data,
		tr:        tr,
		hash:      lsh.Build(aug, lsh.Config{M: cfg.M, Seed: cfg.Seed + 1}),
		maxSqNorm: maxSq,
		cfg:       cfg,
	}
}

// N returns the number of indexed points.
func (ix *Index) N() int { return ix.data.N }

// Dim returns the lifted data dimensionality.
func (ix *Index) Dim() int { return ix.data.D }

// Lambda returns the transformed dimension in use: lambda, or d(d+1)/2 with
// the full transform.
func (ix *Index) Lambda() int { return ix.tr.Dim() }

// IndexBytes reports the memory footprint: hash tables plus the sampled
// monomial index pairs. This is the Table III "Size" column for NH.
func (ix *Index) IndexBytes() int64 { return ix.hash.Bytes() + ix.tr.Bytes() }

// String summarizes the index for logs.
func (ix *Index) String() string {
	return fmt.Sprintf("nh{n=%d d=%d lambda=%d m=%d l=%d}",
		ix.N(), ix.Dim(), ix.cfg.Lambda, ix.cfg.M, ix.cfg.L)
}

// Search answers a top-k P2HNNS query: transform and negate the query,
// probe the hash tables nearest-first, and verify emitted candidates against
// the original vectors until the candidate budget runs out. Budget <= 0
// verifies every point (in collision order), which makes the result exact.
func (ix *Index) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	opts = opts.Normalized()
	var st core.Stats
	tk := core.NewTopK(opts.K)

	var start time.Time
	if opts.Profile != nil {
		start = time.Now()
	}
	gq := ix.tr.Query(q)
	nq := make([]float32, len(gq)+1)
	for i, v := range gq {
		nq[i] = -v
	}
	qp := ix.hash.Project(nq)
	if opts.Profile != nil {
		opts.Profile.Add(core.PhaseLookup, time.Since(start))
	}

	budget := opts.Budget
	if budget <= 0 || budget > ix.data.N {
		budget = ix.data.N
	}

	var lookupDur, verifyDur time.Duration
	profiling := opts.Profile != nil
	var lastPop time.Time
	if profiling {
		lastPop = time.Now()
	}
	st.BucketProbes = ix.hash.ProbeNear(qp, ix.cfg.L, func(id int32) bool {
		if opts.Filter != nil && !opts.Filter(id) {
			return st.Candidates < int64(budget)
		}
		if profiling {
			lookupDur += time.Since(lastPop)
		}
		var t0 time.Time
		if profiling {
			t0 = time.Now()
		}
		d := math.Abs(vec.Dot(q, ix.data.Row(int(id))))
		st.IPCount++
		st.Candidates++
		tk.Push(id, d)
		if profiling {
			verifyDur += time.Since(t0)
			lastPop = time.Now()
		}
		return st.Candidates < int64(budget)
	})
	if profiling {
		lookupDur += time.Since(lastPop)
		opts.Profile.Add(core.PhaseLookup, lookupDur)
		opts.Profile.Add(core.PhaseVerify, verifyDur)
	}
	return tk.Results(), st
}
