package nh

import (
	"math"
	"testing"

	"p2h/internal/core"
	"p2h/internal/dataset"
	"p2h/internal/linearscan"
	"p2h/internal/vec"
)

func testData(t *testing.T, n, d int, seed int64) (data, queries *vec.Matrix) {
	t.Helper()
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: d, Clusters: 8}, n, seed)
	return raw.AppendOnes(), dataset.GenerateQueries(raw, 8, seed+1)
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(nil, Config{})
}

func TestDefaultsApplied(t *testing.T) {
	data, _ := testData(t, 200, 10, 1)
	ix := Build(data, Config{Seed: 1})
	if ix.Lambda() != 2*data.D {
		t.Fatalf("default lambda %d, want %d", ix.Lambda(), 2*data.D)
	}
	if ix.N() != 200 || ix.Dim() != 11 {
		t.Fatalf("index %s", ix)
	}
}

// TestFullBudgetExact: with budget >= n every point is verified, so NH
// returns the exact answer regardless of hash quality.
func TestFullBudgetExact(t *testing.T) {
	data, queries := testData(t, 400, 12, 2)
	ix := Build(data, Config{Lambda: 24, M: 8, L: 2, Seed: 3})
	scan := linearscan.New(data)
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		got, st := ix.Search(q, core.SearchOptions{K: 5})
		want, _ := scan.Search(q, core.SearchOptions{K: 5})
		if st.Candidates != int64(data.N) {
			t.Fatalf("full budget must verify all: %d != %d", st.Candidates, data.N)
		}
		for j := range want {
			if math.Abs(got[j].Dist-want[j].Dist) > 1e-9*(1+want[j].Dist) {
				t.Fatalf("query %d rank %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestBudgetRespected(t *testing.T) {
	data, queries := testData(t, 500, 10, 4)
	ix := Build(data, Config{Lambda: 20, M: 8, L: 2, Seed: 5})
	for _, budget := range []int{1, 25, 100} {
		for i := 0; i < queries.N; i++ {
			res, st := ix.Search(queries.Row(i), core.SearchOptions{K: 5, Budget: budget})
			if st.Candidates > int64(budget) {
				t.Fatalf("budget %d exceeded: %d", budget, st.Candidates)
			}
			if len(res) == 0 {
				t.Fatal("budgeted search must return something")
			}
			if st.BucketProbes == 0 {
				t.Fatal("bucket probes must be counted")
			}
		}
	}
}

// TestRecallImprovesWithBudget: the candidate ordering must carry signal —
// more budget, no worse recall, and near-full budget near-perfect recall.
func TestRecallImprovesWithBudget(t *testing.T) {
	data, queries := testData(t, 2000, 16, 6)
	ix := Build(data, Config{Lambda: 32, M: 16, L: 2, Seed: 7})
	gt := linearscan.GroundTruth(data, queries, 10)
	recallAt := func(budget int) float64 {
		hit, total := 0, 0
		for i := 0; i < queries.N; i++ {
			res, _ := ix.Search(queries.Row(i), core.SearchOptions{K: 10, Budget: budget})
			kth := gt[i][len(gt[i])-1].Dist
			for _, r := range res {
				if r.Dist <= kth*(1+1e-9)+1e-12 {
					hit++
				}
			}
			total += len(gt[i])
		}
		return float64(hit) / float64(total)
	}
	low := recallAt(50)
	full := recallAt(2000)
	if full < 0.999 {
		t.Fatalf("full-budget recall must be exact: %.3f", full)
	}
	if low > full+1e-9 {
		t.Fatalf("recall went down with budget: %.3f -> %.3f", low, full)
	}
}

func TestDeterministicInSeed(t *testing.T) {
	data, queries := testData(t, 300, 8, 8)
	a := Build(data, Config{Lambda: 16, M: 8, L: 2, Seed: 9})
	b := Build(data, Config{Lambda: 16, M: 8, L: 2, Seed: 9})
	for i := 0; i < queries.N; i++ {
		ra, _ := a.Search(queries.Row(i), core.SearchOptions{K: 3, Budget: 50})
		rb, _ := b.Search(queries.Row(i), core.SearchOptions{K: 3, Budget: 50})
		if len(ra) != len(rb) {
			t.Fatal("same seed, different result count")
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("same seed, different results: %v vs %v", ra[j], rb[j])
			}
		}
	}
}

func TestIndexBytesScalesWithM(t *testing.T) {
	data, _ := testData(t, 400, 10, 10)
	small := Build(data, Config{Lambda: 20, M: 4, Seed: 11})
	large := Build(data, Config{Lambda: 20, M: 32, Seed: 11})
	if large.IndexBytes() <= small.IndexBytes() {
		t.Fatalf("more tables must cost more memory: %d <= %d", large.IndexBytes(), small.IndexBytes())
	}
	// Hash tables dominated by m*n*(8+4).
	want := int64(32) * int64(data.N) * 12
	if large.IndexBytes() < want {
		t.Fatalf("table accounting too small: %d < %d", large.IndexBytes(), want)
	}
}

// TestFullTransformVariant: the exact tensor lift (no sampling) has
// dimension d(d+1)/2 and stays exact at full budget.
func TestFullTransformVariant(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 8, Clusters: 4}, 300, 20)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 5, 21)
	ix := Build(data, Config{FullTransform: true, M: 8, L: 2, Seed: 22})
	d := data.D
	if ix.Lambda() != d*(d+1)/2 {
		t.Fatalf("full transform dimension %d, want %d", ix.Lambda(), d*(d+1)/2)
	}
	scan := linearscan.New(data)
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		got, _ := ix.Search(q, core.SearchOptions{K: 3})
		want, _ := scan.Search(q, core.SearchOptions{K: 3})
		for j := range want {
			if math.Abs(got[j].Dist-want[j].Dist) > 1e-9*(1+want[j].Dist) {
				t.Fatalf("query %d rank %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestProfileRecordsLookupAndVerify(t *testing.T) {
	data, queries := testData(t, 600, 10, 12)
	ix := Build(data, Config{Lambda: 20, M: 8, L: 2, Seed: 13})
	prof := &core.Profile{}
	for i := 0; i < queries.N; i++ {
		ix.Search(queries.Row(i), core.SearchOptions{K: 5, Budget: 200, Profile: prof})
	}
	if prof.Get(core.PhaseLookup) <= 0 {
		t.Fatal("lookup phase not recorded")
	}
	if prof.Get(core.PhaseVerify) <= 0 {
		t.Fatal("verify phase not recorded")
	}
}
