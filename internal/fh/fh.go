// Package fh implements FH (Furthest Hyperplane hash), the second hashing
// baseline of Huang et al. [30].
//
// FH shares NH's sampled tensor transformation but keeps the query sign, so
// points near the hyperplane map to points *far* from the transformed query:
// a furthest neighbor search. Two FH-specific mechanisms are reproduced:
//
//   - Norm-based multi-partitioning: points are split into partitions by the
//     norm of their transformed vector, descending, with ratio b: a partition
//     ends where ||f(x)|| drops below b times the partition's maximum. Each
//     partition completes its members' norms to its own sqrt(M_j), which
//     keeps the norm-completion coordinate — pure distortion — small for
//     every partition instead of being dictated by the global maximum.
//   - Separation threshold l: a point becomes a candidate only after it
//     collides with the query in l projections, probed furthest-first
//     (RQALSH-style).
package fh

import (
	"fmt"
	"math"
	"sort"
	"time"

	"p2h/internal/core"
	"p2h/internal/lsh"
	"p2h/internal/transform"
	"p2h/internal/vec"
)

// Config parameterizes FH.
type Config struct {
	// Lambda is the sampled transform dimension (paper: {d, 2d, 4d, 8d}).
	// Zero selects 2d.
	Lambda int
	// M is the number of hash projections per partition. Zero selects 64.
	M int
	// L is the separation threshold (paper: {2, 4, 6}). Zero selects 2.
	L int
	// B is the norm partition ratio in (0, 1). Zero selects 0.9.
	B float64
	// FullTransform switches to the exact d(d+1)/2-dimensional tensor
	// lift instead of lambda sampled monomials (see nh.Config). Use only
	// for small d.
	FullTransform bool
	// Seed drives the sampled transform, the partitioning, and the
	// projections.
	Seed int64
}

func (c Config) normalized(d int) Config {
	if c.Lambda <= 0 {
		c.Lambda = 2 * d
	}
	if c.M <= 0 {
		c.M = 64
	}
	if c.L <= 0 {
		c.L = 2
	}
	if c.B <= 0 || c.B >= 1 {
		c.B = 0.9
	}
	return c
}

// minPartition is the smallest tail worth its own hash tables; smaller
// remainders are merged into the preceding partition.
const minPartition = 16

// part is one norm partition with its own LSH tables.
type part struct {
	ids       []int32 // original data ids, descending transformed norm
	hash      *lsh.Index
	maxSqNorm float64 // M_j
}

// Index is a built FH index.
type Index struct {
	data  *vec.Matrix // lifted originals, for candidate verification
	tr    transform.Transform
	parts []part
	cfg   Config
}

// Build transforms the data, partitions it by transformed norm with ratio b,
// and hashes each partition with its own norm completion.
func Build(data *vec.Matrix, cfg Config) *Index {
	if data == nil || data.N == 0 {
		panic("fh: empty data")
	}
	cfg = cfg.normalized(data.D)
	var tr transform.Transform
	if cfg.FullTransform {
		tr = transform.NewFull(data.D)
	} else {
		tr = transform.NewSampled(data.D, cfg.Lambda, cfg.Seed)
	}

	fm := transform.DataMatrix(tr, data)
	sq := make([]float64, fm.N)
	order := make([]int32, fm.N)
	for i := 0; i < fm.N; i++ {
		sq[i] = vec.SqNorm(fm.Row(i))
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool { return sq[order[a]] > sq[order[b]] })

	ix := &Index{data: data, tr: tr, cfg: cfg}
	b2 := cfg.B * cfg.B
	for start := 0; start < fm.N; {
		maxSq := sq[order[start]]
		end := start + 1
		for end < fm.N && (maxSq == 0 || sq[order[end]] >= b2*maxSq) {
			end++
		}
		if fm.N-end < minPartition {
			end = fm.N
		}
		ids := make([]int32, end-start)
		copy(ids, order[start:end])
		aug := vec.NewMatrix(len(ids), fm.D+1)
		for i, id := range ids {
			row := aug.Row(i)
			copy(row, fm.Row(int(id)))
			row[fm.D] = float32(math.Sqrt(math.Max(0, maxSq-sq[id])))
		}
		ix.parts = append(ix.parts, part{
			ids:       ids,
			hash:      lsh.Build(aug, lsh.Config{M: cfg.M, Seed: cfg.Seed + int64(start) + 1}),
			maxSqNorm: maxSq,
		})
		start = end
	}
	return ix
}

// N returns the number of indexed points.
func (ix *Index) N() int { return ix.data.N }

// Dim returns the lifted data dimensionality.
func (ix *Index) Dim() int { return ix.data.D }

// Lambda returns the transformed dimension in use: lambda, or d(d+1)/2 with
// the full transform.
func (ix *Index) Lambda() int { return ix.tr.Dim() }

// Partitions returns the number of norm partitions.
func (ix *Index) Partitions() int { return len(ix.parts) }

// IndexBytes reports the memory footprint: every partition's hash tables and
// id list, plus the sampled monomial pairs. FH's per-partition tables are the
// extra space the paper's Table III discussion attributes to its partitioning.
func (ix *Index) IndexBytes() int64 {
	total := ix.tr.Bytes()
	for i := range ix.parts {
		total += ix.parts[i].hash.Bytes() + int64(len(ix.parts[i].ids))*4
	}
	return total
}

// String summarizes the index for logs.
func (ix *Index) String() string {
	return fmt.Sprintf("fh{n=%d d=%d lambda=%d m=%d l=%d b=%.2f parts=%d}",
		ix.N(), ix.Dim(), ix.cfg.Lambda, ix.cfg.M, ix.cfg.L, ix.cfg.B, len(ix.parts))
}

// Search answers a top-k P2HNNS query: transform the query (keeping its
// sign), probe every partition furthest-first, and verify candidates against
// the original vectors. The candidate budget is shared across partitions in
// proportion to their sizes. Budget <= 0 verifies every point, which makes
// the result exact.
func (ix *Index) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	opts = opts.Normalized()
	var st core.Stats
	tk := core.NewTopK(opts.K)

	var start time.Time
	if opts.Profile != nil {
		start = time.Now()
	}
	gq := ix.tr.Query(q)
	fq := make([]float32, len(gq)+1)
	copy(fq, gq)
	if opts.Profile != nil {
		opts.Profile.Add(core.PhaseLookup, time.Since(start))
	}

	budget := opts.Budget
	if budget <= 0 || budget > ix.data.N {
		budget = ix.data.N
	}

	profiling := opts.Profile != nil
	for pi := range ix.parts {
		p := &ix.parts[pi]
		share := (budget*len(p.ids) + ix.data.N - 1) / ix.data.N
		if share <= 0 {
			continue
		}
		if share > len(p.ids) {
			share = len(p.ids)
		}

		var t0 time.Time
		if profiling {
			t0 = time.Now()
		}
		qp := p.hash.Project(fq)
		if profiling {
			opts.Profile.Add(core.PhaseLookup, time.Since(t0))
		}

		verified := 0
		var lookupDur, verifyDur time.Duration
		var lastPop time.Time
		if profiling {
			lastPop = time.Now()
		}
		st.BucketProbes += p.hash.ProbeFar(qp, ix.cfg.L, func(local int32) bool {
			id := p.ids[local]
			if opts.Filter != nil && !opts.Filter(id) {
				return verified < share
			}
			if profiling {
				lookupDur += time.Since(lastPop)
			}
			var v0 time.Time
			if profiling {
				v0 = time.Now()
			}
			d := math.Abs(vec.Dot(q, ix.data.Row(int(id))))
			st.IPCount++
			st.Candidates++
			verified++
			tk.Push(id, d)
			if profiling {
				verifyDur += time.Since(v0)
				lastPop = time.Now()
			}
			return verified < share
		})
		if profiling {
			lookupDur += time.Since(lastPop)
			opts.Profile.Add(core.PhaseLookup, lookupDur)
			opts.Profile.Add(core.PhaseVerify, verifyDur)
		}
	}
	return tk.Results(), st
}
