package fh

import (
	"math"
	"testing"

	"p2h/internal/core"
	"p2h/internal/dataset"
	"p2h/internal/linearscan"
	"p2h/internal/vec"
)

func testData(t *testing.T, family dataset.Family, n, d int, seed int64) (data, queries *vec.Matrix) {
	t.Helper()
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: family, RawDim: d, Clusters: 8}, n, seed)
	return raw.AppendOnes(), dataset.GenerateQueries(raw, 8, seed+1)
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(nil, Config{})
}

func TestDefaultsApplied(t *testing.T) {
	data, _ := testData(t, dataset.FamilyClustered, 200, 10, 1)
	ix := Build(data, Config{Seed: 1})
	if ix.Lambda() != 2*data.D {
		t.Fatalf("default lambda %d, want %d", ix.Lambda(), 2*data.D)
	}
	if ix.Partitions() < 1 {
		t.Fatal("must have at least one partition")
	}
}

// TestPartitionsCoverData: partition id lists form a permutation of the ids,
// and within a partition transformed norms stay within the ratio band.
func TestPartitionsCoverData(t *testing.T) {
	// Heavy-tail norms force multiple partitions.
	data, _ := testData(t, dataset.FamilyHeavyTail, 800, 12, 2)
	ix := Build(data, Config{Lambda: 24, M: 4, B: 0.5, Seed: 3})
	if ix.Partitions() < 2 {
		t.Fatalf("heavy-tail data should split into >1 partition, got %d", ix.Partitions())
	}
	seen := make([]bool, data.N)
	total := 0
	for _, p := range ix.parts {
		total += len(p.ids)
		for _, id := range p.ids {
			if seen[id] {
				t.Fatalf("id %d in two partitions", id)
			}
			seen[id] = true
		}
	}
	if total != data.N {
		t.Fatalf("partitions cover %d of %d points", total, data.N)
	}
	// Partition maxima must descend.
	for i := 1; i < len(ix.parts); i++ {
		if ix.parts[i].maxSqNorm > ix.parts[i-1].maxSqNorm {
			t.Fatalf("partition maxima not descending at %d", i)
		}
	}
}

// TestFullBudgetExact: with budget >= n every point in every partition is
// verified, so FH returns the exact answer.
func TestFullBudgetExact(t *testing.T) {
	data, queries := testData(t, dataset.FamilyClustered, 400, 12, 4)
	ix := Build(data, Config{Lambda: 24, M: 8, L: 2, Seed: 5})
	scan := linearscan.New(data)
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		got, st := ix.Search(q, core.SearchOptions{K: 5})
		want, _ := scan.Search(q, core.SearchOptions{K: 5})
		if st.Candidates != int64(data.N) {
			t.Fatalf("full budget must verify all: %d != %d", st.Candidates, data.N)
		}
		for j := range want {
			if math.Abs(got[j].Dist-want[j].Dist) > 1e-9*(1+want[j].Dist) {
				t.Fatalf("query %d rank %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestBudgetSharedAcrossPartitions(t *testing.T) {
	data, queries := testData(t, dataset.FamilyHeavyTail, 1000, 10, 6)
	ix := Build(data, Config{Lambda: 20, M: 4, L: 2, B: 0.7, Seed: 7})
	for _, budget := range []int{10, 100, 500} {
		for i := 0; i < queries.N; i++ {
			_, st := ix.Search(queries.Row(i), core.SearchOptions{K: 5, Budget: budget})
			// Proportional shares round up per partition, so allow the
			// ceiling slack of one candidate per partition.
			max := int64(budget + ix.Partitions())
			if st.Candidates > max {
				t.Fatalf("budget %d wildly exceeded: %d > %d", budget, st.Candidates, max)
			}
		}
	}
}

func TestRecallImprovesWithBudget(t *testing.T) {
	data, queries := testData(t, dataset.FamilyClustered, 2000, 16, 8)
	ix := Build(data, Config{Lambda: 32, M: 16, L: 2, Seed: 9})
	gt := linearscan.GroundTruth(data, queries, 10)
	recallAt := func(budget int) float64 {
		hit, total := 0, 0
		for i := 0; i < queries.N; i++ {
			res, _ := ix.Search(queries.Row(i), core.SearchOptions{K: 10, Budget: budget})
			kth := gt[i][len(gt[i])-1].Dist
			for _, r := range res {
				if r.Dist <= kth*(1+1e-9)+1e-12 {
					hit++
				}
			}
			total += len(gt[i])
		}
		return float64(hit) / float64(total)
	}
	low := recallAt(50)
	full := recallAt(2000)
	if full < 0.999 {
		t.Fatalf("full-budget recall must be exact: %.3f", full)
	}
	if low > full+1e-9 {
		t.Fatalf("recall went down with budget: %.3f -> %.3f", low, full)
	}
}

func TestDeterministicInSeed(t *testing.T) {
	data, queries := testData(t, dataset.FamilyClustered, 300, 8, 10)
	a := Build(data, Config{Lambda: 16, M: 8, L: 2, Seed: 11})
	b := Build(data, Config{Lambda: 16, M: 8, L: 2, Seed: 11})
	for i := 0; i < queries.N; i++ {
		ra, _ := a.Search(queries.Row(i), core.SearchOptions{K: 3, Budget: 50})
		rb, _ := b.Search(queries.Row(i), core.SearchOptions{K: 3, Budget: 50})
		if len(ra) != len(rb) {
			t.Fatal("same seed, different result count")
		}
		for j := range ra {
			if ra[j] != rb[j] {
				t.Fatalf("same seed, different results: %v vs %v", ra[j], rb[j])
			}
		}
	}
}

func TestAllEqualNormsSinglePartition(t *testing.T) {
	// Identical points produce one transformed norm, hence one partition.
	rows := make([][]float32, 100)
	for i := range rows {
		rows[i] = []float32{1, 2, 3, 4}
	}
	data := vec.FromRows(rows).AppendOnes()
	ix := Build(data, Config{Lambda: 10, M: 4, Seed: 12})
	if ix.Partitions() != 1 {
		t.Fatalf("equal norms must form a single partition, got %d", ix.Partitions())
	}
}

// TestFullTransformVariant: the exact tensor lift (no sampling) has
// dimension d(d+1)/2 and stays exact at full budget.
func TestFullTransformVariant(t *testing.T) {
	data, queries := testData(t, dataset.FamilyClustered, 300, 8, 20)
	ix := Build(data, Config{FullTransform: true, M: 8, L: 2, Seed: 22})
	d := data.D
	if ix.Lambda() != d*(d+1)/2 {
		t.Fatalf("full transform dimension %d, want %d", ix.Lambda(), d*(d+1)/2)
	}
	scan := linearscan.New(data)
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		got, _ := ix.Search(q, core.SearchOptions{K: 3})
		want, _ := scan.Search(q, core.SearchOptions{K: 3})
		for j := range want {
			if math.Abs(got[j].Dist-want[j].Dist) > 1e-9*(1+want[j].Dist) {
				t.Fatalf("query %d rank %d: %v != %v", i, j, got[j], want[j])
			}
		}
	}
}

func TestProfileRecordsLookupAndVerify(t *testing.T) {
	data, queries := testData(t, dataset.FamilyClustered, 600, 10, 13)
	ix := Build(data, Config{Lambda: 20, M: 8, L: 2, Seed: 14})
	prof := &core.Profile{}
	for i := 0; i < queries.N; i++ {
		ix.Search(queries.Row(i), core.SearchOptions{K: 5, Budget: 200, Profile: prof})
	}
	if prof.Get(core.PhaseLookup) <= 0 {
		t.Fatal("lookup phase not recorded")
	}
	if prof.Get(core.PhaseVerify) <= 0 {
		t.Fatal("verify phase not recorded")
	}
}
