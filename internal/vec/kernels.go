package vec

import "sort"

// This file holds the blocked kernels behind the flat tree layouts: instead
// of one O(d) call per candidate, a leaf hands its whole contiguous row block
// to a single kernel call. The win is not vectorization magic — accumulation
// still runs in float64 for bound stability — but amortized call overhead,
// bounds checks hoisted out of the hot loop, and strictly sequential reads
// over the packed leaf block, which is what the cache prefetcher rewards.

// DotBlock computes out[i] = <q, rows[i*d : (i+1)*d]> with d = len(q) for
// every row of the packed row-major block. len(rows) must be len(out)*len(q).
// Each row follows exactly Dot's accumulation order, so a blocked result is
// bitwise identical to the per-row Dot call it replaces — callers compare
// distances across code paths (e.g. tree vs. linear scan) with plain ==.
func DotBlock(q []float32, rows []float32, out []float64) {
	d := len(q)
	if len(rows) != len(out)*d {
		panic("vec: DotBlock shape mismatch")
	}
	i := 0
	// Two rows per pass: each loaded element of q serves two accumulation
	// chains, and the independent chains keep the FP units busy.
	for ; i+2 <= len(out); i += 2 {
		a := rows[i*d : i*d+d : i*d+d]
		b := rows[i*d+d : i*d+2*d : i*d+2*d]
		var a0, a1, a2, a3, b0, b1, b2, b3 float64
		j := 0
		for ; j+4 <= d; j += 4 {
			q0, q1, q2, q3 := float64(q[j]), float64(q[j+1]), float64(q[j+2]), float64(q[j+3])
			a0 += q0 * float64(a[j])
			a1 += q1 * float64(a[j+1])
			a2 += q2 * float64(a[j+2])
			a3 += q3 * float64(a[j+3])
			b0 += q0 * float64(b[j])
			b1 += q1 * float64(b[j+1])
			b2 += q2 * float64(b[j+2])
			b3 += q3 * float64(b[j+3])
		}
		for ; j < d; j++ {
			qj := float64(q[j])
			a0 += qj * float64(a[j])
			b0 += qj * float64(b[j])
		}
		out[i] = a0 + a1 + a2 + a3
		out[i+1] = b0 + b1 + b2 + b3
	}
	if i < len(out) {
		out[i] = Dot(q, rows[i*d:i*d+d])
	}
}

// SqDistBlock computes out[i] = ||q - rows[i*d:(i+1)*d]||^2 for every row of
// the packed row-major block. len(rows) must be len(out)*len(q).
func SqDistBlock(q []float32, rows []float32, out []float64) {
	d := len(q)
	if len(rows) != len(out)*d {
		panic("vec: SqDistBlock shape mismatch")
	}
	i := 0
	for ; i+2 <= len(out); i += 2 {
		a := rows[i*d : i*d+d : i*d+d]
		b := rows[i*d+d : i*d+2*d : i*d+2*d]
		var a0, a1, b0, b1 float64
		j := 0
		for ; j+2 <= d; j += 2 {
			q0, q1 := float64(q[j]), float64(q[j+1])
			da0 := q0 - float64(a[j])
			da1 := q1 - float64(a[j+1])
			db0 := q0 - float64(b[j])
			db1 := q1 - float64(b[j+1])
			a0 += da0 * da0
			a1 += da1 * da1
			b0 += db0 * db0
			b1 += db1 * db1
		}
		if j < d {
			qj := float64(q[j])
			da := qj - float64(a[j])
			db := qj - float64(b[j])
			a0 += da * da
			b0 += db * db
		}
		out[i] = a0 + a1
		out[i+1] = b0 + b1
	}
	if i < len(out) {
		out[i] = SqDist(q, rows[i*d:i*d+d])
	}
}

// BallCutoff returns the number of leading entries of the descending radius
// array rx whose point-level ball bound (Corollary 1)
//
//	lb_ball(i) = absIP - qnorm*rx[i]
//
// does not exceed lambda. Because rx is descending the bound ascends along
// the array, so everything from the returned index on is prunable in one
// batch — the flat-layout form of the paper's batch pruning, found by binary
// search instead of a scan. The cut is strict (a point is pruned only when
// its bound is strictly above lambda): candidates tied with the current k-th
// best distance must reach the collector, whose (Dist, ID) order decides
// ties canonically — the invariant behind batched/sequential result
// equivalence.
func BallCutoff(absIP, qnorm, lambda float64, rx []float64) int {
	if qnorm <= 0 {
		if absIP > lambda {
			return 0
		}
		return len(rx)
	}
	// lb_ball(i) > lambda  <=>  rx[i] < (absIP-lambda)/qnorm.
	thresh := (absIP - lambda) / qnorm
	return sort.Search(len(rx), func(i int) bool { return rx[i] < thresh })
}

// ConeSelect is the fused point-level cone bound kernel (Theorem 3): it
// evaluates the O(1) cone lower bound for each point of a leaf block and
// appends the indices of the points it cannot prune to sel, returning the
// extended slice. qcos and qsin are the query's projection onto / rejection
// from the leaf center; xcos and xsin are the per-point analogues stored by
// the tree. A point survives when lbCone*(1-slack) <= lambda: pruning is
// strict so boundary ties reach the collector's canonical (Dist, ID)
// ordering (see BallCutoff).
func ConeSelect(qcos, qsin, lambda, slack float64, xcos, xsin []float64, sel []int32) []int32 {
	if len(xcos) != len(xsin) {
		panic("vec: ConeSelect shape mismatch")
	}
	scale := 1 - slack
	for i := range xcos {
		xc, xs := xcos[i], xsin[i]
		sumA := qcos*xc - qsin*xs
		sumB := qcos*xc + qsin*xs
		var lb float64
		if sumA > 0 && qcos > 0 && xc > 0 {
			lb = sumA
		} else if sumB < 0 {
			lb = -sumB
		}
		if lb*scale <= lambda {
			sel = append(sel, int32(i))
		}
	}
	return sel
}
