// Package vec provides the dense vector and matrix kernels used by every
// index in this repository.
//
// Vectors are stored as []float32, the storage format common to similarity
// search systems, while every accumulation runs in float64 so that the
// geometric bounds built on top of these kernels are stable enough to prune
// safely (see internal/balltree and internal/bctree).
//
// Three kernel families live here:
//
//   - Scalar float kernels (Dot, SqDist, Norm) and their blocked forms
//     (DotBlock, SqDistBlock), which process a leaf's packed row block in one
//     call. A blocked result is bitwise identical to the per-row call it
//     replaces, which is what lets different traversal strategies compare
//     distances with plain ==.
//
//   - Bound kernels (BallCutoff, ConeSelect) that evaluate the paper's
//     point-level pruning bounds over position-ordered leaf arrays.
//
//   - Integer code kernels (CodeDot, CodeSelect, CodeSelectIdx) behind the
//     quantized leaf scan: uint8 codes times int16 weights accumulated
//     exactly in int64. On amd64 an SSE2 assembly kernel (code_amd64.s)
//     processes 16 codes per iteration via PMADDWD; everywhere else — and
//     under the purego build tag — a portable 4-wide Go loop produces the
//     same exact integer results.
//
// All pruning kernels share one contract: a candidate is skipped only when
// its lower bound strictly exceeds the current k-th best distance, so ties
// always reach the collector's canonical (Dist, ID) ordering and every
// traversal order yields identical exact results.
package vec
