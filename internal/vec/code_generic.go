//go:build !amd64 || purego

package vec

// codeDotArch is the portable integer dot kernel: four independent int64
// accumulation chains over a bounds-check-free block, mirroring the float
// kernels' structure so the compiler can keep the multiply units busy.
// Integer accumulation cannot overflow here regardless of length (the
// caller's codeChunk bound only matters for the SIMD lanes), and integer
// addition is associative, so this is bit-identical to the assembly kernel.
func codeDotArch(codes []uint8, w []int16) int64 {
	var s0, s1, s2, s3 int64
	j := 0
	for ; j+4 <= len(codes); j += 4 {
		c := codes[j : j+4 : j+4]
		v := w[j : j+4 : j+4]
		s0 += int64(c[0]) * int64(v[0])
		s1 += int64(c[1]) * int64(v[1])
		s2 += int64(c[2]) * int64(v[2])
		s3 += int64(c[3]) * int64(v[3])
	}
	for ; j < len(codes); j++ {
		s0 += int64(codes[j]) * int64(w[j])
	}
	return s0 + s1 + s2 + s3
}
