package vec

import "math"

// Dot returns the inner product of a and b accumulated in float64.
// It panics if the slices have different lengths.
func Dot(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vec: Dot length mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += float64(a[i]) * float64(b[i])
		s1 += float64(a[i+1]) * float64(b[i+1])
		s2 += float64(a[i+2]) * float64(b[i+2])
		s3 += float64(a[i+3]) * float64(b[i+3])
	}
	for ; i < len(a); i++ {
		s0 += float64(a[i]) * float64(b[i])
	}
	return s0 + s1 + s2 + s3
}

// SqNorm returns the squared l2 norm of a.
func SqNorm(a []float32) float64 {
	var s0, s1 float64
	i := 0
	for ; i+2 <= len(a); i += 2 {
		x, y := float64(a[i]), float64(a[i+1])
		s0 += x * x
		s1 += y * y
	}
	if i < len(a) {
		x := float64(a[i])
		s0 += x * x
	}
	return s0 + s1
}

// Norm returns the l2 norm of a.
func Norm(a []float32) float64 { return math.Sqrt(SqNorm(a)) }

// SqDist returns the squared Euclidean distance between a and b.
// It panics if the slices have different lengths.
func SqDist(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("vec: SqDist length mismatch")
	}
	var s0, s1 float64
	i := 0
	for ; i+2 <= len(a); i += 2 {
		d0 := float64(a[i]) - float64(b[i])
		d1 := float64(a[i+1]) - float64(b[i+1])
		s0 += d0 * d0
		s1 += d1 * d1
	}
	if i < len(a) {
		d := float64(a[i]) - float64(b[i])
		s0 += d * d
	}
	return s0 + s1
}

// Dist returns the Euclidean distance between a and b.
func Dist(a, b []float32) float64 { return math.Sqrt(SqDist(a, b)) }

// AbsDot returns |<a, b>|, the point-to-hyperplane distance of the paper's
// Equation 2 once data points carry a trailing 1 and queries are normalized.
func AbsDot(a, b []float32) float64 { return math.Abs(Dot(a, b)) }

// Scale multiplies a in place by s.
func Scale(a []float32, s float64) {
	for i := range a {
		a[i] = float32(float64(a[i]) * s)
	}
}

// Normalize scales a in place to unit l2 norm and returns its original norm.
// A zero vector is left untouched and 0 is returned.
func Normalize(a []float32) float64 {
	n := Norm(a)
	if n == 0 {
		return 0
	}
	Scale(a, 1/n)
	return n
}

// AddInto accumulates src into the float64 accumulator dst.
// It panics if the slices have different lengths.
func AddInto(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic("vec: AddInto length mismatch")
	}
	for i, v := range src {
		dst[i] += float64(v)
	}
}

// Round32 converts a float64 accumulator into a freshly allocated []float32.
func Round32(a []float64) []float32 {
	out := make([]float32, len(a))
	for i, v := range a {
		out[i] = float32(v)
	}
	return out
}
