//go:build amd64 && !purego

package vec

// codeDotArch dispatches to the SSE2 assembly kernel. SSE2 is part of the
// amd64 baseline (GOAMD64=v1), so no feature detection is needed. Callers
// guarantee len(codes) == len(w) <= codeChunk, which keeps the kernel's
// 32-bit lane accumulators from overflowing (see codeChunk).
func codeDotArch(codes []uint8, w []int16) int64 {
	if len(codes) == 0 {
		return 0
	}
	return codeDotAsm(&codes[0], &w[0], int64(len(codes)))
}

//go:noescape
func codeDotAsm(codes *byte, w *int16, n int64) int64
