package vec

// This file holds the multi-query kernels behind the batched traversal mode
// (internal/exec): where DotBlock amortizes call overhead over one leaf's
// rows for a single query, DotBlockMulti amortizes the *row loads* over a
// whole group of queries. A leaf block streams from memory once per batch
// instead of once per query, and inside the register-blocked inner loop each
// loaded row element feeds two independent query accumulation chains — the
// memory behavior that dominates tree-based search (the prefetcher streams
// rows; the packed queries stay cache-resident).

// DotBlockMulti computes, for nq packed queries and m packed rows,
//
//	out[r*nq + qi] = <qs[qi*d:(qi+1)*d], rows[r*d:(r+1)*d]>
//
// with d = len(qs)/nq and m = len(rows)/d; len(out) must be m*nq. The output
// is row-major by data row so one row's products for every query are
// adjacent, matching the scan order of the batched leaf verification.
//
// Each (query, row) product follows exactly Dot's accumulation order, so a
// batched result is bitwise identical to the per-query Dot/DotBlock call it
// replaces — callers compare distances across code paths with plain ==.
func DotBlockMulti(qs []float32, nq int, rows []float32, out []float64) {
	if nq <= 0 || len(qs)%nq != 0 {
		panic("vec: DotBlockMulti query shape mismatch")
	}
	d := len(qs) / nq
	if d == 0 || len(rows)%d != 0 || len(out)*d != len(rows)*nq {
		panic("vec: DotBlockMulti shape mismatch")
	}
	m := len(rows) / d
	for r := 0; r < m; r++ {
		row := rows[r*d : r*d+d : r*d+d]
		o := out[r*nq : r*nq+nq : r*nq+nq]
		qi := 0
		// Two queries per pass: every loaded row element serves both
		// accumulation chains, halving row traffic per product. Four
		// accumulators per query replicate Dot's chain order exactly.
		for ; qi+2 <= nq; qi += 2 {
			a := qs[qi*d : qi*d+d : qi*d+d]
			b := qs[qi*d+d : qi*d+2*d : qi*d+2*d]
			var a0, a1, a2, a3, b0, b1, b2, b3 float64
			j := 0
			for ; j+4 <= d; j += 4 {
				r0, r1, r2, r3 := float64(row[j]), float64(row[j+1]), float64(row[j+2]), float64(row[j+3])
				a0 += float64(a[j]) * r0
				a1 += float64(a[j+1]) * r1
				a2 += float64(a[j+2]) * r2
				a3 += float64(a[j+3]) * r3
				b0 += float64(b[j]) * r0
				b1 += float64(b[j+1]) * r1
				b2 += float64(b[j+2]) * r2
				b3 += float64(b[j+3]) * r3
			}
			for ; j < d; j++ {
				rj := float64(row[j])
				a0 += float64(a[j]) * rj
				b0 += float64(b[j]) * rj
			}
			o[qi] = a0 + a1 + a2 + a3
			o[qi+1] = b0 + b1 + b2 + b3
		}
		if qi < nq {
			o[qi] = Dot(qs[qi*d:qi*d+d], row)
		}
	}
}

// Widen converts src into the float64 buffer dst, which must have the same
// length. The conversion is exact, so kernels running over widened operands
// return bitwise-identical results to the float32 paths while their inner
// loops shed every per-element conversion — the dominant cost of the scalar
// kernels once data is cache-resident. The batched traversal widens each
// query once per batch and each leaf block once per visit, amortizing the
// conversions over the whole active group.
func Widen(dst []float64, src []float32) {
	if len(dst) != len(src) {
		panic("vec: Widen length mismatch")
	}
	for i, v := range src {
		dst[i] = float64(v)
	}
}

// Dot64 returns the inner product of the widened vectors a and b with
// exactly Dot's accumulation order, so Dot64 over Widen-ed operands is
// bitwise identical to Dot over the originals.
func Dot64(a, b []float64) float64 {
	if len(a) != len(b) {
		panic("vec: Dot64 length mismatch")
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return s0 + s1 + s2 + s3
}

// DotBlockMultiIdx is the widened, gather-free multi-query kernel the
// batched leaf verification runs on: q64 holds every query of the batch
// widened and packed (query qi at q64[qi*d:(qi+1)*d]), act selects the
// active queries, and limits — aligned with act and non-increasing — caps
// how many leading rows each query needs (its point-level pruning prefix).
// It computes
//
//	out[r*len(act) + j] = <q64[act[j]], rows[r*d:(r+1)*d]>
//
// for every row r < limits[j], with exactly Dot's accumulation order per
// product (widening is exact, so results are bitwise identical to the
// float32 scalar path). Entries with r >= limits[j] are left untouched.
//
// Each row is widened once into row64 (a caller scratch of at least d
// entries) during the first query pair's pass, so the remaining pairs run a
// conversion-free float64 inner loop — the conversions that dominate the
// scalar kernels are paid once per row per batch instead of once per row
// per query. Because limits is non-increasing, the active prefix of act
// only shrinks as r grows; rows past every limit cost nothing.
func DotBlockMultiIdx(q64 []float64, d int, act, limits []int32, rows []float32, row64 []float64, out []float64) {
	if d <= 0 || len(rows)%d != 0 || len(row64) < d {
		panic("vec: DotBlockMultiIdx shape mismatch")
	}
	m := len(rows) / d
	nact := len(act)
	if len(limits) != nact || len(out) != m*nact {
		panic("vec: DotBlockMultiIdx output mismatch")
	}
	row64 = row64[:d:d]
	nj := nact
	for r := 0; r < m; r++ {
		for nj > 0 && int(limits[nj-1]) <= r {
			nj--
		}
		if nj == 0 {
			return
		}
		rowf := rows[r*d : r*d+d : r*d+d]
		o := out[r*nact : r*nact+nact : r*nact+nact]
		if nj == 1 {
			// One consumer left: widen inline, skip the row64 store.
			qa := q64[int(act[0])*d : (int(act[0])+1)*d : (int(act[0])+1)*d]
			var s0, s1, s2, s3 float64
			i := 0
			for ; i+4 <= d; i += 4 {
				s0 += qa[i] * float64(rowf[i])
				s1 += qa[i+1] * float64(rowf[i+1])
				s2 += qa[i+2] * float64(rowf[i+2])
				s3 += qa[i+3] * float64(rowf[i+3])
			}
			for ; i < d; i++ {
				s0 += qa[i] * float64(rowf[i])
			}
			o[0] = s0 + s1 + s2 + s3
			continue
		}
		// First pair widens the row as it computes; the stores land in the
		// L1-resident row64 the remaining pairs then read conversion-free.
		{
			qa := q64[int(act[0])*d : (int(act[0])+1)*d : (int(act[0])+1)*d]
			qb := q64[int(act[1])*d : (int(act[1])+1)*d : (int(act[1])+1)*d]
			var a0, a1, a2, a3, b0, b1, b2, b3 float64
			i := 0
			for ; i+4 <= d; i += 4 {
				r0, r1, r2, r3 := float64(rowf[i]), float64(rowf[i+1]), float64(rowf[i+2]), float64(rowf[i+3])
				row64[i], row64[i+1], row64[i+2], row64[i+3] = r0, r1, r2, r3
				a0 += qa[i] * r0
				a1 += qa[i+1] * r1
				a2 += qa[i+2] * r2
				a3 += qa[i+3] * r3
				b0 += qb[i] * r0
				b1 += qb[i+1] * r1
				b2 += qb[i+2] * r2
				b3 += qb[i+3] * r3
			}
			for ; i < d; i++ {
				ri := float64(rowf[i])
				row64[i] = ri
				a0 += qa[i] * ri
				b0 += qb[i] * ri
			}
			o[0] = a0 + a1 + a2 + a3
			o[1] = b0 + b1 + b2 + b3
		}
		j := 2
		for ; j+2 <= nj; j += 2 {
			qa := q64[int(act[j])*d : (int(act[j])+1)*d : (int(act[j])+1)*d]
			qb := q64[int(act[j+1])*d : (int(act[j+1])+1)*d : (int(act[j+1])+1)*d]
			var a0, a1, a2, a3, b0, b1, b2, b3 float64
			i := 0
			for ; i+4 <= d; i += 4 {
				r0, r1, r2, r3 := row64[i], row64[i+1], row64[i+2], row64[i+3]
				a0 += qa[i] * r0
				a1 += qa[i+1] * r1
				a2 += qa[i+2] * r2
				a3 += qa[i+3] * r3
				b0 += qb[i] * r0
				b1 += qb[i+1] * r1
				b2 += qb[i+2] * r2
				b3 += qb[i+3] * r3
			}
			for ; i < d; i++ {
				ri := row64[i]
				a0 += qa[i] * ri
				b0 += qb[i] * ri
			}
			o[j] = a0 + a1 + a2 + a3
			o[j+1] = b0 + b1 + b2 + b3
		}
		if j < nj {
			o[j] = Dot64(q64[int(act[j])*d:(int(act[j])+1)*d], row64)
		}
	}
}

// SqDistBlockMulti computes, for nq packed queries and m packed rows,
//
//	out[r*nq + qi] = ||qs[qi*d:(qi+1)*d] - rows[r*d:(r+1)*d]||^2
//
// with the same shapes and output layout as DotBlockMulti. Each
// (query, row) distance follows exactly SqDist's accumulation order, so
// batched distances are bitwise identical to the scalar path.
func SqDistBlockMulti(qs []float32, nq int, rows []float32, out []float64) {
	if nq <= 0 || len(qs)%nq != 0 {
		panic("vec: SqDistBlockMulti query shape mismatch")
	}
	d := len(qs) / nq
	if d == 0 || len(rows)%d != 0 || len(out)*d != len(rows)*nq {
		panic("vec: SqDistBlockMulti shape mismatch")
	}
	m := len(rows) / d
	for r := 0; r < m; r++ {
		row := rows[r*d : r*d+d : r*d+d]
		o := out[r*nq : r*nq+nq : r*nq+nq]
		qi := 0
		for ; qi+2 <= nq; qi += 2 {
			a := qs[qi*d : qi*d+d : qi*d+d]
			b := qs[qi*d+d : qi*d+2*d : qi*d+2*d]
			var a0, a1, b0, b1 float64
			j := 0
			for ; j+2 <= d; j += 2 {
				r0, r1 := float64(row[j]), float64(row[j+1])
				da0 := float64(a[j]) - r0
				da1 := float64(a[j+1]) - r1
				db0 := float64(b[j]) - r0
				db1 := float64(b[j+1]) - r1
				a0 += da0 * da0
				a1 += da1 * da1
				b0 += db0 * db0
				b1 += db1 * db1
			}
			if j < d {
				rj := float64(row[j])
				da := float64(a[j]) - rj
				db := float64(b[j]) - rj
				a0 += da * da
				b0 += db * db
			}
			o[qi] = a0 + a1
			o[qi+1] = b0 + b1
		}
		if qi < nq {
			o[qi] = SqDist(qs[qi*d:qi*d+d], row)
		}
	}
}
