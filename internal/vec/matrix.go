package vec

import (
	"fmt"
	"math"
)

// Matrix is a dense row-major collection of n vectors of dimension d.
// Row i occupies Data[i*D : (i+1)*D]. A Matrix is the unit of exchange
// between dataset generation, index construction, and query evaluation.
type Matrix struct {
	Data []float32
	N    int // number of rows (vectors)
	D    int // dimension of each row
}

// NewMatrix allocates an n x d matrix of zeros.
func NewMatrix(n, d int) *Matrix {
	if n < 0 || d <= 0 {
		panic(fmt.Sprintf("vec: invalid matrix shape %dx%d", n, d))
	}
	return &Matrix{Data: make([]float32, n*d), N: n, D: d}
}

// FromRows builds a Matrix by copying the given equal-length rows.
func FromRows(rows [][]float32) *Matrix {
	if len(rows) == 0 {
		panic("vec: FromRows needs at least one row")
	}
	d := len(rows[0])
	m := NewMatrix(len(rows), d)
	for i, r := range rows {
		if len(r) != d {
			panic(fmt.Sprintf("vec: FromRows ragged row %d: %d != %d", i, len(r), d))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Row returns the i-th row as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float32 { return m.Data[i*m.D : (i+1)*m.D : (i+1)*m.D] }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.N, m.D)
	copy(out.Data, m.Data)
	return out
}

// AppendOnes returns a new (n x d+1) matrix whose rows are the rows of m with
// a trailing 1 appended — the paper's lifting x = (p; 1) that aligns data and
// hyperplane-query dimensions (Section II).
func (m *Matrix) AppendOnes() *Matrix {
	out := NewMatrix(m.N, m.D+1)
	for i := 0; i < m.N; i++ {
		dst := out.Row(i)
		copy(dst, m.Row(i))
		dst[m.D] = 1
	}
	return out
}

// Bytes returns the in-memory size of the matrix payload in bytes.
func (m *Matrix) Bytes() int64 { return int64(len(m.Data)) * 4 }

// SubsetRows returns a new matrix holding the rows of m selected by idx,
// in order.
func (m *Matrix) SubsetRows(idx []int32) *Matrix {
	out := NewMatrix(len(idx), m.D)
	for i, id := range idx {
		copy(out.Row(i), m.Row(int(id)))
	}
	return out
}

// Centroid computes the mean of the rows selected by idx into a fresh vector.
// It panics if idx is empty.
func (m *Matrix) Centroid(idx []int32) []float32 {
	if len(idx) == 0 {
		panic("vec: Centroid of empty selection")
	}
	acc := make([]float64, m.D)
	for _, id := range idx {
		AddInto(acc, m.Row(int(id)))
	}
	inv := 1 / float64(len(idx))
	for i := range acc {
		acc[i] *= inv
	}
	return Round32(acc)
}

// MaxDistFrom returns the index (position within idx) and distance of the row
// farthest from the vector from, over the rows selected by idx.
// It panics if idx is empty.
func (m *Matrix) MaxDistFrom(idx []int32, from []float32) (pos int, dist float64) {
	if len(idx) == 0 {
		panic("vec: MaxDistFrom over empty selection")
	}
	best, bestPos := -1.0, 0
	for i, id := range idx {
		d := SqDist(m.Row(int(id)), from)
		if d > best {
			best, bestPos = d, i
		}
	}
	return bestPos, math.Sqrt(best)
}
