package vec

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func randBlock(rng *rand.Rand, n, d int) ([]float32, []float32) {
	q := make([]float32, d)
	rows := make([]float32, n*d)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
	}
	for i := range rows {
		rows[i] = float32(rng.NormFloat64())
	}
	return q, rows
}

func TestDotBlockMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{0, 1, 2, 3, 7, 64} {
		for _, d := range []int{1, 2, 3, 17, 128} {
			q, rows := randBlock(rng, n, d)
			out := make([]float64, n)
			DotBlock(q, rows, out)
			for i := 0; i < n; i++ {
				// Bitwise equality: the blocked kernel must round exactly
				// like the per-row Dot it replaces, or exact-search results
				// would drift between code paths.
				if want := Dot(q, rows[i*d:(i+1)*d]); out[i] != want {
					t.Fatalf("n=%d d=%d row %d: %v != %v", n, d, i, out[i], want)
				}
			}
		}
	}
}

func TestSqDistBlockMatchesSqDist(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{0, 1, 2, 5, 33} {
		for _, d := range []int{1, 2, 4, 19, 96} {
			q, rows := randBlock(rng, n, d)
			out := make([]float64, n)
			SqDistBlock(q, rows, out)
			for i := 0; i < n; i++ {
				// Bitwise equality, as for DotBlock.
				if want := SqDist(q, rows[i*d:(i+1)*d]); out[i] != want {
					t.Fatalf("n=%d d=%d row %d: %v != %v", n, d, i, out[i], want)
				}
			}
		}
	}
}

func TestBlockKernelsPanicOnShapeMismatch(t *testing.T) {
	for name, f := range map[string]func(){
		"dot":    func() { DotBlock(make([]float32, 3), make([]float32, 7), make([]float64, 2)) },
		"sqdist": func() { SqDistBlock(make([]float32, 3), make([]float32, 7), make([]float64, 2)) },
		"cone":   func() { ConeSelect(0, 0, 1, 0, make([]float64, 2), make([]float64, 3), nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// ballCutoffNaive is the reference scan the binary search must agree with.
// Pruning is strict: only a bound strictly above lambda cuts.
func ballCutoffNaive(absIP, qnorm, lambda float64, rx []float64) int {
	for i, r := range rx {
		if absIP-qnorm*r > lambda {
			return i
		}
	}
	return len(rx)
}

func TestBallCutoffMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		rx := make([]float64, n)
		for i := range rx {
			rx[i] = rng.Float64() * 10
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(rx)))
		absIP := rng.Float64() * 5
		qnorm := rng.Float64() * 2
		lambda := rng.Float64() * 3
		got := BallCutoff(absIP, qnorm, lambda, rx)
		want := ballCutoffNaive(absIP, qnorm, lambda, rx)
		if got != want {
			t.Fatalf("trial %d: cutoff %d != %d (absIP=%v qnorm=%v lambda=%v rx=%v)",
				trial, got, want, absIP, qnorm, lambda, rx)
		}
	}
}

func TestBallCutoffZeroQnorm(t *testing.T) {
	rx := []float64{3, 2, 1}
	if got := BallCutoff(5, 0, 4, rx); got != 0 {
		t.Fatalf("constant bound above lambda must cut everything, got %d", got)
	}
	if got := BallCutoff(5, 0, 6, rx); got != len(rx) {
		t.Fatalf("constant bound below lambda must keep everything, got %d", got)
	}
}

// coneKeepNaive mirrors the scalar cone-bound logic point by point.
func coneKeepNaive(qcos, qsin, lambda, slack float64, xcos, xsin []float64) []int32 {
	var keep []int32
	for i := range xcos {
		sumA := qcos*xcos[i] - qsin*xsin[i]
		sumB := qcos*xcos[i] + qsin*xsin[i]
		var lb float64
		if sumA > 0 && qcos > 0 && xcos[i] > 0 {
			lb = sumA
		} else if sumB < 0 {
			lb = -sumB
		}
		if lb*(1-slack) <= lambda {
			keep = append(keep, int32(i))
		}
	}
	return keep
}

func TestConeSelectMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(50)
		xcos := make([]float64, n)
		xsin := make([]float64, n)
		for i := range xcos {
			xcos[i] = rng.NormFloat64()
			xsin[i] = math.Abs(rng.NormFloat64())
		}
		qcos := rng.NormFloat64()
		qsin := math.Abs(rng.NormFloat64())
		lambda := rng.Float64() * 2
		got := ConeSelect(qcos, qsin, lambda, 1e-9, xcos, xsin, nil)
		want := coneKeepNaive(qcos, qsin, lambda, 1e-9, xcos, xsin)
		if len(got) != len(want) {
			t.Fatalf("trial %d: kept %d != %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: survivor %d: %d != %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestConeSelectAppendsToExisting(t *testing.T) {
	sel := []int32{99}
	sel = ConeSelect(0, 0, 1, 0, []float64{0}, []float64{0}, sel)
	if len(sel) != 2 || sel[0] != 99 || sel[1] != 0 {
		t.Fatalf("ConeSelect must append, got %v", sel)
	}
}

// --- kernel benchmarks (the bench-regression CI job watches these) ---------

func benchVectors(n, d int) ([]float32, []float32, []float64) {
	rng := rand.New(rand.NewSource(7))
	q, rows := randBlock(rng, n, d)
	return q, rows, make([]float64, n)
}

func BenchmarkDot128(b *testing.B) {
	q, rows, _ := benchVectors(1, 128)
	b.SetBytes(128 * 4)
	for i := 0; i < b.N; i++ {
		sinkF64 = Dot(q, rows)
	}
}

func BenchmarkDotBlock100x128(b *testing.B) {
	q, rows, out := benchVectors(100, 128)
	b.SetBytes(100 * 128 * 4)
	for i := 0; i < b.N; i++ {
		DotBlock(q, rows, out)
	}
}

func BenchmarkDotLoop100x128(b *testing.B) {
	// The pre-flat-layout leaf scan shape: one Dot call per row.
	q, rows, out := benchVectors(100, 128)
	b.SetBytes(100 * 128 * 4)
	for i := 0; i < b.N; i++ {
		for r := 0; r < 100; r++ {
			out[r] = Dot(q, rows[r*128:(r+1)*128])
		}
	}
}

func BenchmarkSqDistBlock100x128(b *testing.B) {
	q, rows, out := benchVectors(100, 128)
	b.SetBytes(100 * 128 * 4)
	for i := 0; i < b.N; i++ {
		SqDistBlock(q, rows, out)
	}
}

func BenchmarkConeSelect100(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	xcos := make([]float64, 100)
	xsin := make([]float64, 100)
	for i := range xcos {
		xcos[i] = rng.NormFloat64()
		xsin[i] = math.Abs(rng.NormFloat64())
	}
	sel := make([]int32, 0, 100)
	for i := 0; i < b.N; i++ {
		sel = ConeSelect(0.5, 0.8, 0.3, 1e-9, xcos, xsin, sel[:0])
	}
	sinkInt = len(sel)
}

var (
	sinkF64 float64
	sinkInt int
)
