package vec

import "math"

// This file holds the integer kernels behind the quantized leaf scan: a leaf
// block's uint8 codes are multiplied against a query's rounded int16 weights
// entirely in integer arithmetic, and the affine form base + dot/S with its
// precomputed error bound eps decides which rows still need float
// verification (see internal/quant for how the coefficients are fitted).
// Conservative filtering never changes results: exact top-k under the
// canonical (Dist, ID) order is unique, so any subset of provably-losing rows
// may be skipped.

// codeChunk bounds the element count of one dispatch to the architecture
// kernel. The amd64 kernel accumulates in 32-bit lanes; with |w| <= 32768 and
// codes <= 255 a lane gains at most 2*32768*255 per 16-element iteration, so
// 2048 elements (128 iterations) stay below the int32 ceiling with margin.
const codeChunk = 2048

// CodeDot returns sum_j codes[j]*w[j] in exact int64 arithmetic. It panics if
// the slices have different lengths. The result is independent of the
// architecture kernel in use: integer addition is associative, so the SIMD
// lane split cannot change the sum.
func CodeDot(codes []uint8, w []int16) int64 {
	if len(codes) != len(w) {
		panic("vec: CodeDot length mismatch")
	}
	var s int64
	for len(codes) > codeChunk {
		s += codeDotArch(codes[:codeChunk], w[:codeChunk])
		codes, w = codes[codeChunk:], w[codeChunk:]
	}
	return s + codeDotArch(codes, w)
}

// codeKeep reports whether a row with integer code dot s survives the
// quantized filter: the provable floor |approx|-eps on the exact distance
// must not strictly exceed lambda. Pruning is strict so rows tied with the
// current k-th best reach the collector's canonical (Dist, ID) ordering, the
// same contract as BallCutoff and ConeSelect.
func codeKeep(s int64, base, invS, eps, lambda float64) bool {
	approx := base + float64(s)*invS
	return math.Abs(approx)-eps <= lambda
}

// CodeSelect runs the quantized filter over a packed row-major code block of
// row length d and appends the indices of the rows it cannot prune to sel,
// returning the extended slice. base, invS and eps are the query's fitted
// affine form (quant.CodeFilter); lambda is the current k-th best distance.
func CodeSelect(codes []uint8, d int, w []int16, base, invS, eps, lambda float64, sel []int32) []int32 {
	if d <= 0 || len(codes)%d != 0 {
		panic("vec: CodeSelect shape mismatch")
	}
	if len(w) != d {
		panic("vec: CodeSelect weight length mismatch")
	}
	m := len(codes) / d
	for i := 0; i < m; i++ {
		row := codes[i*d : i*d+d : i*d+d]
		if codeKeep(CodeDot(row, w), base, invS, eps, lambda) {
			sel = append(sel, int32(i))
		}
	}
	return sel
}

// CodeSelectIdx applies the quantized filter to the rows named by idx
// (indices into the code block, as produced by ConeSelect) and compacts the
// survivors into the front of idx, returning the shortened slice. It lets
// BC-Tree compose its cone bound with the quantized filter without a second
// index buffer.
func CodeSelectIdx(codes []uint8, d int, w []int16, base, invS, eps, lambda float64, idx []int32) []int32 {
	if d <= 0 {
		panic("vec: CodeSelectIdx shape mismatch")
	}
	if len(w) != d {
		panic("vec: CodeSelectIdx weight length mismatch")
	}
	kept := idx[:0]
	for _, i := range idx {
		row := codes[int(i)*d : int(i)*d+d : int(i)*d+d]
		if codeKeep(CodeDot(row, w), base, invS, eps, lambda) {
			kept = append(kept, i)
		}
	}
	return kept
}
