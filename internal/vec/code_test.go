package vec

import (
	"math"
	"math/rand"
	"testing"
)

// codeDotRef is the obvious scalar reference the kernels must match exactly.
func codeDotRef(codes []uint8, w []int16) int64 {
	var s int64
	for j := range codes {
		s += int64(codes[j]) * int64(w[j])
	}
	return s
}

func TestCodeDotMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	lengths := []int{0, 1, 2, 3, 7, 8, 15, 16, 17, 31, 33, 100, 129,
		codeChunk - 1, codeChunk, codeChunk + 1, 2*codeChunk + 5}
	for _, n := range lengths {
		codes := make([]uint8, n)
		w := make([]int16, n)
		for trial := 0; trial < 20; trial++ {
			for j := range codes {
				codes[j] = uint8(rng.Intn(256))
				w[j] = int16(rng.Intn(1<<16) - (1 << 15))
			}
			want := codeDotRef(codes, w)
			if got := CodeDot(codes, w); got != want {
				t.Fatalf("CodeDot(n=%d) = %d, want %d", n, got, want)
			}
		}
	}
}

// TestCodeDotOverflowStress drives every element to its extreme magnitude
// across multiple kernel chunks: the SIMD lane accumulators must not wrap.
func TestCodeDotOverflowStress(t *testing.T) {
	for _, n := range []int{codeChunk, 2*codeChunk + 7} {
		codes := make([]uint8, n)
		w := make([]int16, n)
		for _, wv := range []int16{math.MinInt16, math.MaxInt16} {
			for j := range codes {
				codes[j] = 255
				w[j] = wv
			}
			want := int64(n) * 255 * int64(wv)
			if got := CodeDot(codes, w); got != want {
				t.Fatalf("CodeDot(n=%d, w=%d) = %d, want %d", n, wv, got, want)
			}
		}
	}
}

func TestCodeDotPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	CodeDot(make([]uint8, 3), make([]int16, 4))
}

func TestCodeSelectMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		d := 1 + rng.Intn(40)
		m := rng.Intn(30)
		codes := make([]uint8, m*d)
		w := make([]int16, d)
		for j := range codes {
			codes[j] = uint8(rng.Intn(256))
		}
		for j := range w {
			w[j] = int16(rng.Intn(2001) - 1000)
		}
		base := rng.NormFloat64() * 10
		invS := rng.Float64() / 100
		eps := rng.Float64()
		lambda := rng.NormFloat64() * 5

		var want []int32
		for i := 0; i < m; i++ {
			s := codeDotRef(codes[i*d:(i+1)*d], w)
			if math.Abs(base+float64(s)*invS)-eps <= lambda {
				want = append(want, int32(i))
			}
		}
		got := CodeSelect(codes, d, w, base, invS, eps, lambda, nil)
		if len(got) != len(want) {
			t.Fatalf("CodeSelect kept %d rows, want %d", len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("CodeSelect[%d] = %d, want %d", i, got[i], want[i])
			}
		}

		// CodeSelectIdx over the full index list must agree with CodeSelect,
		// and over a subset must return exactly the surviving subset.
		idx := make([]int32, m)
		for i := range idx {
			idx[i] = int32(i)
		}
		if kept := CodeSelectIdx(codes, d, w, base, invS, eps, lambda, idx); len(kept) != len(want) {
			t.Fatalf("CodeSelectIdx kept %d rows, want %d", len(kept), len(want))
		}
		var sub, wantSub []int32
		for i := 0; i < m; i += 2 {
			sub = append(sub, int32(i))
			s := codeDotRef(codes[i*d:(i+1)*d], w)
			if math.Abs(base+float64(s)*invS)-eps <= lambda {
				wantSub = append(wantSub, int32(i))
			}
		}
		keptSub := CodeSelectIdx(codes, d, w, base, invS, eps, lambda, sub)
		if len(keptSub) != len(wantSub) {
			t.Fatalf("CodeSelectIdx subset kept %d rows, want %d", len(keptSub), len(wantSub))
		}
		for i := range keptSub {
			if keptSub[i] != wantSub[i] {
				t.Fatalf("CodeSelectIdx subset[%d] = %d, want %d", i, keptSub[i], wantSub[i])
			}
		}
	}
}

func benchCodes(m, d int) ([]uint8, []int16) {
	rng := rand.New(rand.NewSource(3))
	codes := make([]uint8, m*d)
	w := make([]int16, d)
	for j := range codes {
		codes[j] = uint8(rng.Intn(256))
	}
	for j := range w {
		w[j] = int16(rng.Intn(1<<16) - (1 << 15))
	}
	return codes, w
}

func BenchmarkCodeDot129(b *testing.B) {
	codes, w := benchCodes(1, 129)
	b.SetBytes(129)
	for i := 0; i < b.N; i++ {
		sinkInt64 = CodeDot(codes, w)
	}
}

func BenchmarkCodeSelect100x129(b *testing.B) {
	codes, w := benchCodes(100, 129)
	sel := make([]int32, 0, 100)
	b.SetBytes(100 * 129)
	for i := 0; i < b.N; i++ {
		sel = CodeSelect(codes, 129, w, 0.5, 1e-4, 0.25, 0.75, sel[:0])
	}
	sinkInt = len(sel)
}

var sinkInt64 int64
