//go:build amd64 && !purego

#include "textflag.h"

// codeDotAsm computes sum codes[j]*w[j] over n elements with SSE2, the
// amd64 baseline ISA. Per 16-element iteration: PUNPCK{L,H}BW zero-extends
// 16 uint8 codes into two 8 x i16 vectors, PMADDWL (PMADDWD) multiplies
// them against the int16 weights and adds adjacent pairs into 4 x i32, and
// PADDL accumulates into two i32x4 registers. The caller bounds n at 2048
// so the i32 lanes cannot overflow (see codeChunk in code.go). The final
// reduction widens each i32 lane to i64 before summing, so the returned
// int64 is the exact integer dot product.
//
// func codeDotAsm(codes *byte, w *int16, n int64) int64
TEXT ·codeDotAsm(SB), NOSPLIT, $0-32
	MOVQ codes+0(FP), SI
	MOVQ w+8(FP), DI
	MOVQ n+16(FP), CX
	PXOR X7, X7 // zero register for the byte->word unpack
	PXOR X6, X6 // i32x4 accumulator, lanes 0..7
	PXOR X5, X5 // i32x4 accumulator, lanes 8..15
	XORQ AX, AX // scalar accumulator for the tail

loop16:
	CMPQ CX, $16
	JLT  tail
	MOVOU (SI), X0 // 16 codes
	MOVO  X0, X1
	PUNPCKLBW X7, X0 // low 8 codes -> 8 x i16
	PUNPCKHBW X7, X1 // high 8 codes -> 8 x i16
	MOVOU (DI), X2   // weights 0..7
	MOVOU 16(DI), X3 // weights 8..15
	PMADDWL X2, X0   // pairwise i16*i16, adjacent sums -> 4 x i32
	PMADDWL X3, X1
	PADDL X0, X6
	PADDL X1, X5
	ADDQ $16, SI
	ADDQ $32, DI
	SUBQ $16, CX
	JMP  loop16

tail:
	TESTQ CX, CX
	JE    done

tailloop:
	MOVBQZX (SI), DX
	MOVWQSX (DI), BX
	IMULQ   BX, DX
	ADDQ    DX, AX
	INCQ    SI
	ADDQ    $2, DI
	DECQ    CX
	JNZ     tailloop

done:
	// Widen the 8 i32 lanes to i64 one at a time (PSRLO shifts the whole
	// register right by 4 bytes, exposing the next lane) and sum into AX.
	MOVL    X6, BX
	MOVLQSX BX, BX
	ADDQ    BX, AX
	PSRLO   $4, X6
	MOVL    X6, BX
	MOVLQSX BX, BX
	ADDQ    BX, AX
	PSRLO   $4, X6
	MOVL    X6, BX
	MOVLQSX BX, BX
	ADDQ    BX, AX
	PSRLO   $4, X6
	MOVL    X6, BX
	MOVLQSX BX, BX
	ADDQ    BX, AX
	MOVL    X5, BX
	MOVLQSX BX, BX
	ADDQ    BX, AX
	PSRLO   $4, X5
	MOVL    X5, BX
	MOVLQSX BX, BX
	ADDQ    BX, AX
	PSRLO   $4, X5
	MOVL    X5, BX
	MOVLQSX BX, BX
	ADDQ    BX, AX
	PSRLO   $4, X5
	MOVL    X5, BX
	MOVLQSX BX, BX
	ADDQ    BX, AX
	MOVQ    AX, ret+24(FP)
	RET
