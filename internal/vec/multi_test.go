package vec

import (
	"fmt"
	"math/rand"
	"testing"
)

func randQueries(rng *rand.Rand, nq, d int) []float32 {
	qs := make([]float32, nq*d)
	for i := range qs {
		qs[i] = float32(rng.NormFloat64())
	}
	return qs
}

func TestDotBlockMultiMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, nq := range []int{1, 2, 3, 8, 13} {
		for _, m := range []int{0, 1, 2, 5, 37} {
			for _, d := range []int{1, 3, 4, 17, 128} {
				qs := randQueries(rng, nq, d)
				_, rows := randBlock(rng, m, d)
				out := make([]float64, m*nq)
				DotBlockMulti(qs, nq, rows, out)
				for r := 0; r < m; r++ {
					for qi := 0; qi < nq; qi++ {
						// Bitwise equality with the scalar path: batched and
						// per-query searches must agree with plain ==.
						want := Dot(qs[qi*d:(qi+1)*d], rows[r*d:(r+1)*d])
						if out[r*nq+qi] != want {
							t.Fatalf("nq=%d m=%d d=%d row %d query %d: %v != %v",
								nq, m, d, r, qi, out[r*nq+qi], want)
						}
					}
				}
			}
		}
	}
}

func TestSqDistBlockMultiMatchesSqDist(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, nq := range []int{1, 2, 5, 9} {
		for _, m := range []int{0, 1, 3, 21} {
			for _, d := range []int{1, 2, 7, 96} {
				qs := randQueries(rng, nq, d)
				_, rows := randBlock(rng, m, d)
				out := make([]float64, m*nq)
				SqDistBlockMulti(qs, nq, rows, out)
				for r := 0; r < m; r++ {
					for qi := 0; qi < nq; qi++ {
						want := SqDist(qs[qi*d:(qi+1)*d], rows[r*d:(r+1)*d])
						if out[r*nq+qi] != want {
							t.Fatalf("nq=%d m=%d d=%d row %d query %d: %v != %v",
								nq, m, d, r, qi, out[r*nq+qi], want)
						}
					}
				}
			}
		}
	}
}

// TestDotBlockMultiIdxMatchesDot checks the widened, limit-aware kernel:
// bitwise equality with the scalar Dot on every computed (query, row)
// product, untouched output entries past each query's limit, and correct
// handling of the shrinking active prefix.
func TestDotBlockMultiIdxMatchesDot(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, nq := range []int{1, 2, 3, 8} {
		for _, m := range []int{1, 2, 7, 40} {
			for _, d := range []int{1, 4, 17, 128} {
				qs := randQueries(rng, nq, d)
				_, rows := randBlock(rng, m, d)
				q64 := make([]float64, len(qs))
				Widen(q64, qs)

				act := make([]int32, nq)
				limits := make([]int32, nq)
				for j := range act {
					act[j] = int32((j * 7) % nq) // arbitrary selection, repeats allowed
					limits[j] = int32(m - j*(m/(nq+1)))
				}
				// limits must be non-increasing; the construction above is.
				const sentinel = -12345.0
				out := make([]float64, m*nq)
				for i := range out {
					out[i] = sentinel
				}
				row64 := make([]float64, d)
				DotBlockMultiIdx(q64, d, act, limits, rows, row64, out)
				for r := 0; r < m; r++ {
					for j := 0; j < nq; j++ {
						got := out[r*nq+j]
						if r >= int(limits[j]) {
							if got != sentinel {
								t.Fatalf("nq=%d m=%d d=%d row %d query %d: wrote past limit %d", nq, m, d, r, j, limits[j])
							}
							continue
						}
						qi := int(act[j])
						want := Dot(qs[qi*d:(qi+1)*d], rows[r*d:(r+1)*d])
						if got != want {
							t.Fatalf("nq=%d m=%d d=%d row %d query %d: %v != %v", nq, m, d, r, j, got, want)
						}
					}
				}
			}
		}
	}
}

func TestMultiKernelsPanicOnShapeMismatch(t *testing.T) {
	for name, f := range map[string]func(){
		"dot-nq":      func() { DotBlockMulti(make([]float32, 7), 2, make([]float32, 4), make([]float64, 2)) },
		"dot-rows":    func() { DotBlockMulti(make([]float32, 8), 2, make([]float32, 7), make([]float64, 2)) },
		"dot-out":     func() { DotBlockMulti(make([]float32, 8), 2, make([]float32, 8), make([]float64, 3)) },
		"dot-zero":    func() { DotBlockMulti(nil, 0, make([]float32, 8), make([]float64, 2)) },
		"sqdist-nq":   func() { SqDistBlockMulti(make([]float32, 7), 2, make([]float32, 4), make([]float64, 2)) },
		"sqdist-rows": func() { SqDistBlockMulti(make([]float32, 8), 2, make([]float32, 7), make([]float64, 2)) },
		"sqdist-out":  func() { SqDistBlockMulti(make([]float32, 8), 2, make([]float32, 8), make([]float64, 3)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// BenchmarkDotBlockMulti measures the multi-query leaf kernel at the batched
// traversal's shape (a leaf block of 100 rows against a group of queries)
// next to the equivalent per-query DotBlock loop, so the row-load
// amortization is visible in isolation.
func BenchmarkDotBlockMulti(b *testing.B) {
	const m, d = 100, 128
	rng := rand.New(rand.NewSource(13))
	_, rows := randBlock(rng, m, d)
	for _, nq := range []int{2, 8, 32} {
		qs := randQueries(rng, nq, d)
		out := make([]float64, m*nq)
		b.Run(fmt.Sprintf("multi-q%d", nq), func(b *testing.B) {
			b.SetBytes(int64(m * d * 4))
			for i := 0; i < b.N; i++ {
				DotBlockMulti(qs, nq, rows, out)
			}
		})
		b.Run(fmt.Sprintf("perquery-q%d", nq), func(b *testing.B) {
			b.SetBytes(int64(m * d * 4))
			tmp := make([]float64, m)
			for i := 0; i < b.N; i++ {
				for qi := 0; qi < nq; qi++ {
					DotBlock(qs[qi*d:(qi+1)*d], rows, tmp)
				}
			}
		})
	}
}
