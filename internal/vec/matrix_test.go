package vec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixShape(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.N != 3 || m.D != 4 || len(m.Data) != 12 {
		t.Fatalf("unexpected shape: %+v", m)
	}
}

func TestNewMatrixPanicsOnBadShape(t *testing.T) {
	for _, c := range []struct{ n, d int }{{-1, 3}, {2, 0}, {2, -5}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewMatrix(%d,%d) should panic", c.n, c.d)
				}
			}()
			NewMatrix(c.n, c.d)
		}()
	}
}

func TestFromRowsAndRow(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}, {5, 6}})
	if m.N != 3 || m.D != 2 {
		t.Fatalf("shape %dx%d", m.N, m.D)
	}
	r := m.Row(1)
	if r[0] != 3 || r[1] != 4 {
		t.Fatalf("Row(1) = %v", r)
	}
	// Row aliases storage.
	r[0] = 9
	if m.Data[2] != 9 {
		t.Fatal("Row must alias the matrix storage")
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged rows")
		}
	}()
	FromRows([][]float32{{1, 2}, {3}})
}

func TestFromRowsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty rows")
		}
	}()
	FromRows(nil)
}

func TestAppendOnes(t *testing.T) {
	m := FromRows([][]float32{{1, 2}, {3, 4}})
	a := m.AppendOnes()
	if a.D != 3 || a.N != 2 {
		t.Fatalf("AppendOnes shape %dx%d", a.N, a.D)
	}
	for i := 0; i < a.N; i++ {
		row := a.Row(i)
		if row[2] != 1 {
			t.Errorf("row %d missing trailing 1: %v", i, row)
		}
		if row[0] != m.Row(i)[0] || row[1] != m.Row(i)[1] {
			t.Errorf("row %d body changed: %v", i, row)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromRows([][]float32{{1, 2}})
	c := m.Clone()
	c.Data[0] = 42
	if m.Data[0] == 42 {
		t.Fatal("Clone must not share storage")
	}
}

func TestSubsetRows(t *testing.T) {
	m := FromRows([][]float32{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	s := m.SubsetRows([]int32{3, 1})
	if s.N != 2 || s.Row(0)[0] != 3 || s.Row(1)[0] != 1 {
		t.Fatalf("SubsetRows wrong: %+v", s)
	}
}

func TestCentroid(t *testing.T) {
	m := FromRows([][]float32{{0, 0}, {2, 4}, {4, 2}})
	c := m.Centroid([]int32{0, 1, 2})
	if c[0] != 2 || c[1] != 2 {
		t.Fatalf("Centroid = %v, want [2 2]", c)
	}
	// subset centroid
	c = m.Centroid([]int32{1})
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Centroid = %v, want [2 4]", c)
	}
}

func TestCentroidEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(1, 2).Centroid(nil)
}

func TestMaxDistFrom(t *testing.T) {
	m := FromRows([][]float32{{0, 0}, {3, 4}, {1, 1}})
	pos, dist := m.MaxDistFrom([]int32{0, 1, 2}, []float32{0, 0})
	if pos != 1 || !almostEq(dist, 5, 1e-6) {
		t.Fatalf("MaxDistFrom = (%d, %v), want (1, 5)", pos, dist)
	}
}

func TestMaxDistFromEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewMatrix(1, 2).MaxDistFrom(nil, []float32{0, 0})
}

func TestBytes(t *testing.T) {
	m := NewMatrix(10, 8)
	if m.Bytes() != 320 {
		t.Fatalf("Bytes = %d, want 320", m.Bytes())
	}
}

// Property: centroid of all rows is inside the bounding box per coordinate.
func TestQuickCentroidInBox(t *testing.T) {
	f := func(seed int64, nn, dd uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n, d := int(nn%20)+1, int(dd%16)+1
		m := NewMatrix(n, d)
		for i := range m.Data {
			m.Data[i] = float32(rng.NormFloat64())
		}
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		c := m.Centroid(idx)
		for j := 0; j < d; j++ {
			lo, hi := float32(1e30), float32(-1e30)
			for i := 0; i < n; i++ {
				v := m.Row(i)[j]
				if v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
			}
			if c[j] < lo-1e-4 || c[j] > hi+1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
