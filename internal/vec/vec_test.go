package vec

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return d <= tol*scale
}

func TestDotBasic(t *testing.T) {
	cases := []struct {
		a, b []float32
		want float64
	}{
		{[]float32{1, 2, 3}, []float32{4, 5, 6}, 32},
		{[]float32{0, 0}, []float32{1, 1}, 0},
		{[]float32{-1, 2, -3, 4, -5}, []float32{5, 4, 3, 2, 1}, -3},
		{[]float32{1}, []float32{-1}, -1},
		{nil, nil, 0},
	}
	for i, c := range cases {
		if got := Dot(c.a, c.b); !almostEq(got, c.want, 1e-12) {
			t.Errorf("case %d: Dot=%v want %v", i, got, c.want)
		}
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float32{1}, []float32{1, 2})
}

func TestSqDistPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	SqDist([]float32{1, 2, 3}, []float32{1, 2})
}

func TestNormAndSqNorm(t *testing.T) {
	a := []float32{3, 4}
	if got := Norm(a); !almostEq(got, 5, 1e-12) {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := SqNorm(a); !almostEq(got, 25, 1e-12) {
		t.Errorf("SqNorm = %v, want 25", got)
	}
	if got := Norm(nil); got != 0 {
		t.Errorf("Norm(nil) = %v, want 0", got)
	}
}

func TestDistMatchesHandComputation(t *testing.T) {
	a := []float32{1, 2, 3}
	b := []float32{4, 6, 3}
	if got := Dist(a, b); !almostEq(got, 5, 1e-12) {
		t.Errorf("Dist = %v, want 5", got)
	}
}

func TestAbsDot(t *testing.T) {
	a := []float32{1, -2}
	b := []float32{3, 4}
	if got := AbsDot(a, b); !almostEq(got, 5, 1e-12) {
		t.Errorf("AbsDot = %v, want 5", got)
	}
}

func TestScaleAndNormalize(t *testing.T) {
	a := []float32{2, 0, 0}
	Scale(a, 0.5)
	if a[0] != 1 {
		t.Errorf("Scale failed: %v", a)
	}
	b := []float32{0, 3, 4}
	n := Normalize(b)
	if !almostEq(n, 5, 1e-6) {
		t.Errorf("Normalize returned %v, want 5", n)
	}
	if !almostEq(Norm(b), 1, 1e-6) {
		t.Errorf("Normalize left norm %v", Norm(b))
	}
	z := []float32{0, 0}
	if Normalize(z) != 0 {
		t.Error("Normalize of zero vector should return 0")
	}
}

// Property: Dot is symmetric and bilinear under scaling.
func TestQuickDotSymmetric(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := int(n%64) + 1
		a, b := make([]float32, d), make([]float32, d)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		return almostEq(Dot(a, b), Dot(b, a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Cauchy-Schwarz |<a,b>| <= ||a||*||b||, with float tolerance.
func TestQuickCauchySchwarz(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := int(n%128) + 1
		a, b := make([]float32, d), make([]float32, d)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		return AbsDot(a, b) <= Norm(a)*Norm(b)*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: SqDist(a,b) == SqNorm(a) + SqNorm(b) - 2*Dot(a,b).
func TestQuickSqDistExpansion(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := int(n%64) + 1
		a, b := make([]float32, d), make([]float32, d)
		for i := range a {
			a[i] = float32(rng.NormFloat64())
			b[i] = float32(rng.NormFloat64())
		}
		lhs := SqDist(a, b)
		rhs := SqNorm(a) + SqNorm(b) - 2*Dot(a, b)
		return almostEq(lhs, rhs, 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddIntoRound32(t *testing.T) {
	acc := make([]float64, 3)
	AddInto(acc, []float32{1, 2, 3})
	AddInto(acc, []float32{1, 2, 3})
	got := Round32(acc)
	want := []float32{2, 4, 6}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Round32 = %v, want %v", got, want)
		}
	}
}

func TestAddIntoPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	AddInto(make([]float64, 2), []float32{1, 2, 3})
}
