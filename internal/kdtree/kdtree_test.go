package kdtree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"p2h/internal/core"
	"p2h/internal/dataset"
	"p2h/internal/linearscan"
	"p2h/internal/vec"
)

func testData(t *testing.T, family dataset.Family, n, d int, seed int64) (data, queries *vec.Matrix) {
	t.Helper()
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: family, RawDim: d, Clusters: 8}, n, seed)
	return raw.AppendOnes(), dataset.GenerateQueries(raw, 10, seed+1)
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(vec.NewMatrix(0, 3), Config{})
}

func TestBuildInvariants(t *testing.T) {
	data, _ := testData(t, dataset.FamilyClustered, 500, 12, 1)
	tree := Build(data, Config{LeafSize: 20})
	if tree.N() != 500 || tree.Dim() != 13 {
		t.Fatalf("tree %s", tree)
	}
	seen := make([]bool, tree.N())
	for _, id := range tree.ids {
		if seen[id] {
			t.Fatalf("id %d appears twice", id)
		}
		seen[id] = true
	}
	var nodes, leaves int
	var walk func(n *node)
	walk = func(n *node) {
		nodes++
		if n.count() <= 0 {
			t.Fatal("empty node")
		}
		for pos := n.start; pos < n.end; pos++ {
			row := tree.points.Row(int(pos))
			for j, v := range row {
				if v < n.lo[j] || v > n.hi[j] {
					t.Fatalf("point outside box at dim %d: %v not in [%v,%v]", j, v, n.lo[j], n.hi[j])
				}
			}
		}
		if n.isLeaf() {
			leaves++
			if int(n.count()) > tree.leafSize {
				t.Fatalf("leaf size %d > %d", n.count(), tree.leafSize)
			}
			return
		}
		if n.left.start != n.start || n.right.end != n.end || n.left.end != n.right.start {
			t.Fatal("children do not partition parent")
		}
		walk(n.left)
		walk(n.right)
	}
	walk(tree.root)
	if nodes != tree.Nodes() || leaves != tree.Leaves() {
		t.Fatalf("node accounting: %d/%d vs %d/%d", nodes, leaves, tree.Nodes(), tree.Leaves())
	}
}

func TestSearchExactMatchesLinearScan(t *testing.T) {
	for _, family := range []dataset.Family{dataset.FamilyClustered, dataset.FamilyUniform, dataset.FamilySparse} {
		raw := dataset.Generate(dataset.Spec{Name: "t", Family: family, RawDim: 16, Clusters: 8}, 500, 2)
		data := raw.AppendOnes()
		queries := dataset.GenerateQueries(raw, 10, 3)
		tree := Build(data, Config{LeafSize: 25})
		scan := linearscan.New(data)
		for i := 0; i < queries.N; i++ {
			q := queries.Row(i)
			got, _ := tree.Search(q, core.SearchOptions{K: 5})
			want, _ := scan.Search(q, core.SearchOptions{K: 5})
			for j := range want {
				if math.Abs(got[j].Dist-want[j].Dist) > 1e-9*(1+want[j].Dist) {
					t.Fatalf("%v query %d rank %d: %v != %v", family, i, j, got[j], want[j])
				}
			}
		}
	}
}

func TestSearchBudgetRespected(t *testing.T) {
	data, queries := testData(t, dataset.FamilyUniform, 800, 8, 4)
	tree := Build(data, Config{LeafSize: 40})
	for _, budget := range []int{1, 20, 200} {
		for i := 0; i < queries.N; i++ {
			res, st := tree.Search(queries.Row(i), core.SearchOptions{K: 5, Budget: budget})
			if st.Candidates > int64(budget) {
				t.Fatalf("budget %d exceeded: %d", budget, st.Candidates)
			}
			if len(res) == 0 {
				t.Fatal("budgeted search must return something")
			}
		}
	}
}

func TestSearchPrunes(t *testing.T) {
	data, queries := testData(t, dataset.FamilyClustered, 4000, 10, 5)
	tree := Build(data, Config{LeafSize: 50})
	var st core.Stats
	for i := 0; i < queries.N; i++ {
		_, s := tree.Search(queries.Row(i), core.SearchOptions{K: 1})
		st.Add(s)
	}
	if st.PrunedNodes == 0 {
		t.Fatal("expected pruned subtrees")
	}
	if float64(st.Candidates) > 0.9*float64(int64(queries.N)*int64(data.N)) {
		t.Fatalf("pruning too weak: %d", st.Candidates)
	}
}

// TestQuickBoxBoundSound: the box bound never exceeds the true minimum
// |<x,q>| of any point in the node.
func TestQuickBoxBoundSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(200) + 20
		d := rng.Intn(10) + 2
		raw := dataset.Generate(dataset.Spec{Name: "q", Family: dataset.FamilyUniform, RawDim: d}, n, seed)
		data := raw.AppendOnes()
		queries := dataset.GenerateQueries(raw, 3, seed+1)
		tree := Build(data, Config{LeafSize: 10})
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			ok := true
			var walk func(nd *node)
			walk = func(nd *node) {
				lo, hi := ipInterval(q, nd)
				lb := boxBound(lo, hi)
				trueMin := math.Inf(1)
				for pos := nd.start; pos < nd.end; pos++ {
					v := math.Abs(vec.Dot(q, tree.points.Row(int(pos))))
					if v < trueMin {
						trueMin = v
					}
				}
				if lb > trueMin*(1+1e-6)+1e-6 {
					ok = false
				}
				if !nd.isLeaf() {
					walk(nd.left)
					walk(nd.right)
				}
			}
			walk(tree.root)
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSinglePoint(t *testing.T) {
	data := vec.FromRows([][]float32{{5, -2}}).AppendOnes()
	tree := Build(data, Config{})
	res, _ := tree.Search([]float32{1, 0, -1}, core.SearchOptions{K: 1})
	if len(res) != 1 || res[0].ID != 0 {
		t.Fatalf("result %v", res)
	}
	want := math.Abs(5*1 + 0 - 1)
	if math.Abs(res[0].Dist-want) > 1e-9 {
		t.Fatalf("distance %v want %v", res[0].Dist, want)
	}
}
