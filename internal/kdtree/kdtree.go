// Package kdtree implements a KD-Tree for P2HNNS — the bounding-box
// alternative the paper's Section III-A(2) argues against choosing.
//
// A box node bounds |<x, q>| through the interval of the inner product over
// the box: each dimension contributes [min(q_i*lo_i, q_i*hi_i),
// max(q_i*lo_i, q_i*hi_i)] depending on the sign of q_i — the "O(d) cases"
// the paper contrasts with the three cases of the ball bound. If the interval
// straddles zero the bound is 0; otherwise it is the distance of the interval
// from zero.
//
// The package exists as a measurable ablation of the paper's design argument:
// the box bound is tighter per node on axis-aligned data but costs a full
// O(d) interval evaluation per node and 2d floats of storage, where the ball
// bound costs one inner product and d+1 floats.
package kdtree

import (
	"fmt"
	"math"
	"sort"
	"time"

	"p2h/internal/core"
	"p2h/internal/vec"
)

// DefaultLeafSize matches the Ball-Tree default N0.
const DefaultLeafSize = 100

// boundSlack keeps box pruning conservative under rounding.
const boundSlack = 1e-9

// Config parameterizes tree construction.
type Config struct {
	// LeafSize is the maximum number of points per leaf. Zero selects
	// DefaultLeafSize.
	LeafSize int
}

func (c Config) normalized() Config {
	if c.LeafSize <= 0 {
		c.LeafSize = DefaultLeafSize
	}
	return c
}

// node covers positions [start, end) of the reordered storage, bounded by the
// axis-aligned box [lo, hi].
type node struct {
	lo, hi      []float32
	start, end  int32
	left, right *node
}

func (n *node) count() int32 { return n.end - n.start }
func (n *node) isLeaf() bool { return n.left == nil }

// Tree is a KD-Tree over lifted data points.
type Tree struct {
	points   *vec.Matrix
	ids      []int32
	root     *node
	leafSize int
	nodes    int
	leaves   int
}

// Build constructs the tree by recursive median splits on the widest box
// dimension. The input matrix is not modified.
func Build(data *vec.Matrix, cfg Config) *Tree {
	if data == nil || data.N == 0 {
		panic("kdtree: empty data")
	}
	cfg = cfg.normalized()
	t := &Tree{ids: make([]int32, data.N), leafSize: cfg.LeafSize}
	for i := range t.ids {
		t.ids[i] = int32(i)
	}
	b := &builder{data: data, tree: t}
	t.root = b.build(t.ids, 0)
	t.points = data.SubsetRows(t.ids)
	return t
}

type builder struct {
	data *vec.Matrix
	tree *Tree
}

func (b *builder) build(ids []int32, offset int32) *node {
	n := &node{start: offset, end: offset + int32(len(ids))}
	n.lo, n.hi = b.box(ids)
	b.tree.nodes++
	if len(ids) <= b.tree.leafSize {
		b.tree.leaves++
		return n
	}

	dim := widest(n.lo, n.hi)
	sort.Slice(ids, func(i, j int) bool {
		return b.data.Row(int(ids[i]))[dim] < b.data.Row(int(ids[j]))[dim]
	})
	nl := len(ids) / 2
	n.left = b.build(ids[:nl], offset)
	n.right = b.build(ids[nl:], offset+int32(nl))
	return n
}

// box computes the tight axis-aligned bounding box of the selected rows.
func (b *builder) box(ids []int32) (lo, hi []float32) {
	d := b.data.D
	lo = make([]float32, d)
	hi = make([]float32, d)
	copy(lo, b.data.Row(int(ids[0])))
	copy(hi, lo)
	for _, id := range ids[1:] {
		row := b.data.Row(int(id))
		for j, v := range row {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	return lo, hi
}

func widest(lo, hi []float32) int {
	best, bestDim := float32(-1), 0
	for j := range lo {
		if w := hi[j] - lo[j]; w > best {
			best, bestDim = w, j
		}
	}
	return bestDim
}

// N returns the number of indexed points.
func (t *Tree) N() int { return t.points.N }

// Dim returns the lifted dimensionality.
func (t *Tree) Dim() int { return t.points.D }

// LeafSize returns the configured maximum leaf size.
func (t *Tree) LeafSize() int { return t.leafSize }

// Nodes returns the total number of tree nodes.
func (t *Tree) Nodes() int { return t.nodes }

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return t.leaves }

// IndexBytes estimates the index footprint: two box vectors per node plus the
// position->id map — the 2x-center storage the package comment calls out.
func (t *Tree) IndexBytes() int64 {
	perNode := int64(t.points.D)*8 + 2*8 + 2*4
	return int64(t.nodes)*perNode + int64(len(t.ids))*4
}

// DataBytes returns the size of the reordered data copy.
func (t *Tree) DataBytes() int64 { return t.points.Bytes() }

// String summarizes the tree for logs.
func (t *Tree) String() string {
	return fmt.Sprintf("kdtree{n=%d d=%d leafsize=%d nodes=%d leaves=%d}",
		t.N(), t.Dim(), t.leafSize, t.nodes, t.leaves)
}

// ipInterval returns the range of <x, q> over the node's box.
func ipInterval(q []float32, n *node) (lo, hi float64) {
	for j, qv := range q {
		a := float64(qv) * float64(n.lo[j])
		b := float64(qv) * float64(n.hi[j])
		if a <= b {
			lo += a
			hi += b
		} else {
			lo += b
			hi += a
		}
	}
	return lo, hi
}

// boxBound converts the interval into the lower bound on |<x, q>|.
func boxBound(lo, hi float64) float64 {
	if lo <= 0 && hi >= 0 {
		return 0
	}
	if lo > 0 {
		return lo
	}
	return -hi
}

// Search answers a top-k P2HNNS query by branch-and-bound over the boxes.
// Children are visited in order of the midpoint of their inner-product
// interval (the analogue of the paper's center preference).
func (t *Tree) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	opts = opts.Normalized()
	var st core.Stats
	tk := core.NewTopK(opts.K)
	s := &searcher{tree: t, q: q, tk: tk, st: &st, opts: opts}
	s.visit(t.root)
	return tk.Results(), st
}

type searcher struct {
	tree *Tree
	q    []float32
	tk   *core.TopK
	st   *core.Stats
	opts core.SearchOptions
}

func (s *searcher) visit(n *node) {
	if !s.opts.BudgetLeft(s.st.Candidates) {
		return
	}
	s.st.NodesVisited++

	var start time.Time
	if s.opts.Profile != nil {
		start = time.Now()
	}
	ilo, ihi := ipInterval(s.q, n)
	lb := boxBound(ilo, ihi) * (1 - boundSlack)
	if s.opts.Profile != nil {
		s.opts.Profile.Add(core.PhaseBound, time.Since(start))
	}

	// Strict, like the ball trees: a bound equal to λ does not prune, so
	// boundary ties reach the collector's canonical (Dist, ID) order and
	// exact results agree with the linear scan even on ties.
	if lb > s.tk.Lambda() {
		s.st.PrunedNodes++
		return
	}
	if n.isLeaf() {
		s.scanLeaf(n)
		return
	}

	// Center-like preference: the child whose interval midpoint is closer
	// to zero is likelier to hold near-hyperplane points.
	mlo, mhi := ipInterval(s.q, n.left)
	rlo, rhi := ipInterval(s.q, n.right)
	first, second := n.left, n.right
	if math.Abs(rlo+rhi) < math.Abs(mlo+mhi) {
		first, second = n.right, n.left
	}
	s.visit(first)
	s.visit(second)
}

func (s *searcher) scanLeaf(n *node) {
	s.st.LeavesVisited++
	var start time.Time
	if s.opts.Profile != nil {
		start = time.Now()
	}
	for pos := n.start; pos < n.end; pos++ {
		if !s.opts.BudgetLeft(s.st.Candidates) {
			break
		}
		id := s.tree.ids[pos]
		if s.opts.Filter != nil && !s.opts.Filter(id) {
			continue
		}
		d := math.Abs(vec.Dot(s.q, s.tree.points.Row(int(pos))))
		s.st.IPCount++
		s.st.Candidates++
		s.tk.Push(id, d)
	}
	if s.opts.Profile != nil {
		s.opts.Profile.Add(core.PhaseVerify, time.Since(start))
	}
}
