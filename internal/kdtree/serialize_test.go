package kdtree

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"p2h/internal/binio"
	"p2h/internal/core"
	"p2h/internal/vec"
)

func testMatrix(n, d int, seed int64) *vec.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := vec.NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

func testQuery(d int, seed int64) []float32 {
	rng := rand.New(rand.NewSource(seed))
	q := make([]float32, d)
	for i := range q {
		q[i] = float32(rng.NormFloat64())
	}
	return q
}

func TestSaveLoadRoundTrip(t *testing.T) {
	data := testMatrix(300, 9, 1)
	orig := Build(data, Config{LeafSize: 16})

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	loaded, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if loaded.N() != orig.N() || loaded.Dim() != orig.Dim() ||
		loaded.Nodes() != orig.Nodes() || loaded.Leaves() != orig.Leaves() ||
		loaded.LeafSize() != orig.LeafSize() {
		t.Fatalf("shape mismatch: %v vs %v", loaded, orig)
	}

	for qi := 0; qi < 20; qi++ {
		q := testQuery(9, int64(100+qi))
		for _, opts := range []core.SearchOptions{
			{K: 5},
			{K: 3, Budget: 40},
		} {
			wantRes, _ := orig.Search(q, opts)
			gotRes, _ := loaded.Search(q, opts)
			if !reflect.DeepEqual(gotRes, wantRes) {
				t.Fatalf("query %d opts %+v: results diverge:\n got %v\nwant %v", qi, opts, gotRes, wantRes)
			}
		}
	}

	// Determinism: a second Save of the loaded tree is byte-identical.
	var buf2 bytes.Buffer
	if err := loaded.Save(&buf2); err != nil {
		t.Fatalf("re-Save: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("Save -> Load -> Save is not byte-identical")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	data := testMatrix(120, 5, 2)
	orig := Build(data, Config{LeafSize: 8})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatalf("Save: %v", err)
	}
	good := buf.Bytes()

	// Every truncation point fails cleanly.
	for _, cut := range []int{0, 4, len(magic), 30, len(good) / 2, len(good) - 1} {
		if _, err := Load(bytes.NewReader(good[:cut])); !errors.Is(err, binio.ErrCorrupt) {
			t.Fatalf("truncated at %d: err = %v, want ErrCorrupt", cut, err)
		}
	}

	// Bad magic.
	bad := append([]byte("NOTKDTRE"), good[len(magic):]...)
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, binio.ErrCorrupt) {
		t.Fatalf("bad magic: err = %v, want ErrCorrupt", err)
	}

	// An absurd declared size must fail the bound check, not reach a
	// giant allocation. n sits after magic + leafSize(4).
	bad = append([]byte(nil), good...)
	for i := 0; i < 4; i++ {
		bad[len(magic)+4+i] = 0x7f
	}
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, binio.ErrCorrupt) {
		t.Fatalf("absurd n: err = %v, want ErrCorrupt", err)
	}

	// A flipped byte in the node records must not produce a valid tree
	// silently claiming different ranges. (Flipping data bytes is allowed
	// to succeed — point coordinates carry no structure — so corrupt a
	// node range instead: the node stream starts after ids and points.)
	nodeOff := len(magic) + 5*4 + 120*4 + 120*5*4 + 1 // into the root's start field
	bad = append([]byte(nil), good...)
	bad[nodeOff] ^= 0xff
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, binio.ErrCorrupt) {
		t.Fatalf("corrupt node range: err = %v, want ErrCorrupt", err)
	}
}
