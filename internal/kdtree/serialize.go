package kdtree

import (
	"io"

	"p2h/internal/binio"
	"p2h/internal/vec"
)

// Serialization format: a header with the tree shape, the position->id map
// and the reordered point storage, then the nodes as a recursive preorder
// record stream (leaf flag, range, box bounds). The boxes are stored rather
// than recomputed so a restored tree prunes bitwise-identically to the tree
// that was saved.
var magic = []byte("P2HKD001")

// maxSerialDim and maxSerialElems guard corrupt headers against absurd
// allocations: a declared shape whose element count exceeds the bound fails
// as corrupt instead of reaching a make() that would panic.
const (
	maxSerialDim   = 1 << 20
	maxSerialElems = 1 << 31 // 8 GiB of float32 — beyond any real index
)

// Save writes the tree to w, self-contained so Load can restore it without
// the original data matrix.
func (t *Tree) Save(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Bytes(magic)
	bw.I32(int32(t.leafSize))
	bw.I32(int32(t.points.N))
	bw.I32(int32(t.points.D))
	bw.I32(int32(t.nodes))
	bw.I32(int32(t.leaves))
	bw.I32s(t.ids)
	bw.F32s(t.points.Data)
	saveNode(bw, t.root)
	return bw.Flush()
}

func saveNode(bw *binio.Writer, n *node) {
	if n.isLeaf() {
		bw.U8(1)
	} else {
		bw.U8(0)
	}
	bw.I32(n.start)
	bw.I32(n.end)
	bw.F32s(n.lo)
	bw.F32s(n.hi)
	if !n.isLeaf() {
		saveNode(bw, n.left)
		saveNode(bw, n.right)
	}
}

// Load restores a tree written by Save. The stream is validated
// structurally; corrupt input yields an error wrapping binio.ErrCorrupt.
func Load(r io.Reader) (*Tree, error) {
	br := binio.NewReader(r)
	br.Expect(magic)
	leafSize := int(br.I32())
	n := int(br.I32())
	d := int(br.I32())
	nodes := int(br.I32())
	leaves := int(br.I32())
	if err := br.Err(); err != nil {
		return nil, err
	}
	if leafSize <= 0 || n <= 0 || d <= 0 || d > maxSerialDim {
		br.Fail("bad header: leafSize=%d n=%d d=%d", leafSize, n, d)
		return nil, br.Err()
	}
	if int64(n)*int64(d) > maxSerialElems {
		br.Fail("declared size %dx%d exceeds the serialization bound", n, d)
		return nil, br.Err()
	}
	if nodes < 1 || nodes > 2*n || leaves < 1 || leaves > nodes {
		br.Fail("bad node counts: nodes=%d leaves=%d n=%d", nodes, leaves, n)
		return nil, br.Err()
	}
	t := &Tree{leafSize: leafSize, nodes: nodes, leaves: leaves}
	t.ids = br.I32s(n)
	if br.Err() == nil {
		for _, id := range t.ids {
			if id < 0 || int(id) >= n {
				br.Fail("id %d out of range", id)
				break
			}
		}
	}
	data := br.F32s(n * d)
	if err := br.Err(); err != nil {
		return nil, err
	}
	t.points = &vec.Matrix{Data: data, N: n, D: d}

	ld := &loader{br: br, d: d, budget: nodes}
	t.root = ld.load(0, int32(n))
	if br.Err() == nil && ld.budget != 0 {
		br.Fail("node count mismatch: %d unread", ld.budget)
	}
	if br.Err() == nil && ld.leaves != leaves {
		br.Fail("leaf count %d != declared %d", ld.leaves, leaves)
	}
	if err := br.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

type loader struct {
	br     *binio.Reader
	d      int
	budget int // remaining nodes allowed; bounds recursion on corrupt input
	leaves int
}

// load reads one preorder record covering exactly [start, end) — the
// declared range is validated against the range the parent hands down, so a
// corrupt stream cannot smuggle in overlapping or gapped partitions.
func (ld *loader) load(start, end int32) *node {
	if ld.budget <= 0 {
		ld.br.Fail("more nodes than declared")
		return nil
	}
	ld.budget--
	leaf := ld.br.U8()
	n := &node{start: ld.br.I32(), end: ld.br.I32()}
	if ld.br.Err() != nil {
		return nil
	}
	if n.start != start || n.end != end || n.end <= n.start {
		ld.br.Fail("node range [%d,%d) does not cover [%d,%d)", n.start, n.end, start, end)
		return nil
	}
	n.lo = ld.br.F32s(ld.d)
	n.hi = ld.br.F32s(ld.d)
	if ld.br.Err() != nil {
		return nil
	}
	for j := range n.lo {
		if n.lo[j] > n.hi[j] {
			ld.br.Fail("inverted box bound at dim %d", j)
			return nil
		}
	}
	if leaf == 1 {
		ld.leaves++
		return n
	}
	// Build always splits at the median (nl = len(ids)/2), so the children
	// of [start, end) cover [start, mid) and [mid, end); the recursive range
	// checks reject any stream that disagrees.
	mid := start + (end-start)/2
	n.left = ld.load(start, mid)
	n.right = ld.load(mid, end)
	if ld.br.Err() != nil {
		return nil
	}
	return n
}
