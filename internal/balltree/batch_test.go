package balltree

import (
	"testing"

	"p2h/internal/core"
	"p2h/internal/dataset"
	"p2h/internal/vec"
)

func batchSetup(t *testing.T, n, nq int, seed int64) (*Tree, *vec.Matrix) {
	t.Helper()
	raw := dataset.Dedup(dataset.Generate(dataset.Spec{
		Name: "t", Family: dataset.FamilyClustered, RawDim: 24, Clusters: 8,
	}, n, seed))
	queries := dataset.GenerateQueries(raw, nq, seed+1)
	normalizeRows(queries)
	return Build(raw.AppendOnes(), Config{LeafSize: 32, Seed: seed}), queries
}

// normalizeRows rescales every query to a unit normal, the contract of the
// tree-level Search/SearchBatch (p2h.checkQuery does this at the API
// boundary).
func normalizeRows(queries *vec.Matrix) {
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		vec.Normalize(q[:len(q)-1])
	}
}

// requireSameResults asserts bitwise-equal results, including order.
func requireSameResults(t *testing.T, label string, got, want []core.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s rank %d: %+v != %+v", label, i, got[i], want[i])
		}
	}
}

func TestSearchBatchMatchesSequential(t *testing.T) {
	tree, queries := batchSetup(t, 1500, 40, 1)
	for _, tc := range []struct {
		name string
		opts core.SearchOptions
	}{
		{"exact-k1", core.SearchOptions{K: 1}},
		{"exact-k10", core.SearchOptions{K: 10}},
		{"exact-kBig", core.SearchOptions{K: tree.N() + 5}}, // k > n
		{"budget", core.SearchOptions{K: 10, Budget: 100}},
		{"filtered", core.SearchOptions{K: 10, Filter: func(id int32) bool { return id%3 != 0 }}},
		{"lowerbound-pref", core.SearchOptions{K: 10, Preference: core.PrefLowerBound}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batch, _ := tree.SearchBatch(queries, tc.opts)
			for qi := 0; qi < queries.N; qi++ {
				want, _ := tree.Search(queries.Row(qi), tc.opts)
				requireSameResults(t, tc.name, batch[qi], want)
			}
		})
	}
}

func TestSearchBatchEmptyAndSingle(t *testing.T) {
	tree, queries := batchSetup(t, 400, 3, 2)
	empty := &vec.Matrix{Data: nil, N: 0, D: queries.D}
	out, stats := tree.SearchBatch(empty, core.SearchOptions{K: 5})
	if len(out) != 0 || len(stats) != 0 {
		t.Fatalf("empty batch: %d results, %d stats", len(out), len(stats))
	}
	one := &vec.Matrix{Data: queries.Row(0), N: 1, D: queries.D}
	out, _ = tree.SearchBatch(one, core.SearchOptions{K: 5})
	want, _ := tree.Search(queries.Row(0), core.SearchOptions{K: 5})
	requireSameResults(t, "single", out[0], want)
}

func TestSearchBatchPanicsOnDimMismatch(t *testing.T) {
	tree, _ := batchSetup(t, 300, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tree.SearchBatch(vec.NewMatrix(2, tree.Dim()+1), core.SearchOptions{K: 1})
}

// TestSearchBatchStatsAccounted checks the per-query counters of the shared
// traversal stay plausible: every query visits the root, and work counters
// are positive.
func TestSearchBatchStatsAccounted(t *testing.T) {
	tree, queries := batchSetup(t, 800, 8, 4)
	_, stats := tree.SearchBatch(queries, core.SearchOptions{K: 5})
	for qi, st := range stats {
		if st.NodesVisited < 1 {
			t.Fatalf("query %d: no nodes visited", qi)
		}
		if st.Candidates <= 0 || st.IPCount <= 0 {
			t.Fatalf("query %d: empty work counters %+v", qi, st)
		}
	}
}
