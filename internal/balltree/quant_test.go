package balltree

import (
	"bytes"
	"testing"

	"p2h/internal/core"
	"p2h/internal/dataset"
	"p2h/internal/vec"
)

func quantPair(t *testing.T, n, nq int, seed int64) (plain, quantized *Tree, queries *vec.Matrix) {
	t.Helper()
	raw := dataset.Dedup(dataset.Generate(dataset.Spec{
		Name: "t", Family: dataset.FamilyClustered, RawDim: 24, Clusters: 8,
	}, n, seed))
	queries = dataset.GenerateQueries(raw, nq, seed+1)
	normalizeRows(queries)
	data := raw.AppendOnes()
	plain = Build(data, Config{LeafSize: 32, Seed: seed})
	quantized = Build(data, Config{LeafSize: 32, Seed: seed, Quantize: true})
	return plain, quantized, queries
}

// TestQuantSearchMatchesFloat: a quantized tree must return bitwise-identical
// results to the same tree without the mirror, across every option shape —
// the filter is exact, so it may only remove work, never answers.
func TestQuantSearchMatchesFloat(t *testing.T) {
	plain, quantized, queries := quantPair(t, 1500, 40, 31)
	for _, tc := range []struct {
		name string
		opts core.SearchOptions
	}{
		{"exact-k1", core.SearchOptions{K: 1}},
		{"exact-k10", core.SearchOptions{K: 10}},
		{"exact-kBig", core.SearchOptions{K: plain.N() + 5}}, // k > n: heap never fills
		{"budget", core.SearchOptions{K: 10, Budget: 100}},
		{"filtered", core.SearchOptions{K: 10, Filter: func(id int32) bool { return id%3 != 0 }}},
		{"lowerbound-pref", core.SearchOptions{K: 10, Preference: core.PrefLowerBound}},
		{"ablated", core.SearchOptions{K: 10, DisableQuantFilter: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for qi := 0; qi < queries.N; qi++ {
				q := queries.Row(qi)
				want, _ := plain.Search(q, tc.opts)
				got, _ := quantized.Search(q, tc.opts)
				requireSameResults(t, tc.name, got, want)
			}
		})
	}
}

// TestQuantBatchMatchesSequential: the batched quantized traversal must match
// per-query quantized search result-for-result.
func TestQuantBatchMatchesSequential(t *testing.T) {
	_, quantized, queries := quantPair(t, 1500, 40, 33)
	for _, tc := range []struct {
		name string
		opts core.SearchOptions
	}{
		{"exact-k1", core.SearchOptions{K: 1}},
		{"exact-k10", core.SearchOptions{K: 10}},
		{"exact-kBig", core.SearchOptions{K: quantized.N() + 5}},
		{"ablated", core.SearchOptions{K: 10, DisableQuantFilter: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			batch, _ := quantized.SearchBatch(queries, tc.opts)
			for qi := 0; qi < queries.N; qi++ {
				want, _ := quantized.Search(queries.Row(qi), tc.opts)
				requireSameResults(t, tc.name, batch[qi], want)
			}
		})
	}
}

// TestQuantFilterActuallyPrunes guards against the filter silently degrading
// to a no-op: on clustered data the quantized exact search must prune rows
// and verify strictly fewer candidates than the float scan.
func TestQuantFilterActuallyPrunes(t *testing.T) {
	plain, quantized, queries := quantPair(t, 3000, 20, 35)
	var floatCand, quantCand, pruned int64
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		_, sf := plain.Search(q, core.SearchOptions{K: 10})
		_, sq := quantized.Search(q, core.SearchOptions{K: 10})
		floatCand += sf.Candidates
		quantCand += sq.Candidates
		pruned += sq.PrunedPoints
	}
	if pruned == 0 {
		t.Fatal("quantized filter pruned nothing")
	}
	if quantCand >= floatCand {
		t.Fatalf("quantized path verified %d candidates, float path %d — no savings", quantCand, floatCand)
	}
}

// TestQuantSaveLoadRoundTrip: the v3 format round-trips the mirror, restored
// trees answer identically (results and stats), and the quantization section
// is validated — a tampered code byte must fail the load rather than load a
// mirror that could silently prune true neighbors.
func TestQuantSaveLoadRoundTrip(t *testing.T) {
	_, quantized, queries := quantPair(t, 900, 10, 37)
	var buf bytes.Buffer
	if err := quantized.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	restored, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Quantized() {
		t.Fatal("restored tree lost its quantized mirror")
	}
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		a, sa := quantized.Search(q, core.SearchOptions{K: 7})
		b, sb := restored.Search(q, core.SearchOptions{K: 7})
		requireSameResults(t, "restored", b, a)
		if sa != sb {
			t.Fatalf("query %d: stats differ: %+v != %+v", qi, sa, sb)
		}
	}

	// Tamper with one code byte near the end of the stream (the code mirror
	// is the final section): Load must reject it.
	tampered := append([]byte(nil), raw...)
	tampered[len(tampered)-10] ^= 0x80
	if _, err := Load(bytes.NewReader(tampered)); err == nil {
		t.Fatal("tampered quantization section must fail to load")
	}

	// Truncating the quantization section must fail too.
	if _, err := Load(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("truncated quantization section must fail to load")
	}
}
