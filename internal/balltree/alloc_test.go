//go:build !race

package balltree

import (
	"testing"

	"p2h/internal/core"
)

// TestSearcherZeroAllocs pins the steady-state allocation count of the
// pooled execution engine at zero: once a Searcher's scratch (top-k heap,
// leaf buffer) and the caller's dst have grown to their working size,
// repeated exact and budgeted searches must not allocate at all. Guarded
// from -race builds, where the runtime's instrumentation allocates.
func TestSearcherZeroAllocs(t *testing.T) {
	tree, queries := batchSetup(t, 2000, 8, 21)
	for _, tc := range []struct {
		name string
		opts core.SearchOptions
	}{
		{"exact", core.SearchOptions{K: 10}},
		{"budgeted", core.SearchOptions{K: 10, Budget: 200}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := tree.NewSearcher()
			var dst []core.Result
			// Warm up: grow every scratch buffer to its steady-state size.
			for qi := 0; qi < queries.N; qi++ {
				dst, _ = s.Search(queries.Row(qi), tc.opts, dst[:0])
			}
			qi := 0
			allocs := testing.AllocsPerRun(100, func() {
				dst, _ = s.Search(queries.Row(qi%queries.N), tc.opts, dst[:0])
				qi++
			})
			if allocs != 0 {
				t.Fatalf("steady-state Search allocated %.1f times per op, want 0", allocs)
			}
		})
	}
}

// TestQuantSearcherZeroAllocs pins the quantized leaf scan at zero
// steady-state allocations: the fitted filter's weight slice and the
// survivor scratch grow once during warmup and are reused ever after.
func TestQuantSearcherZeroAllocs(t *testing.T) {
	_, quantized, queries := quantPair(t, 2000, 8, 23)
	s := quantized.NewSearcher()
	opts := core.SearchOptions{K: 10}
	var dst []core.Result
	for qi := 0; qi < queries.N; qi++ {
		dst, _ = s.Search(queries.Row(qi), opts, dst[:0])
	}
	qi := 0
	allocs := testing.AllocsPerRun(100, func() {
		dst, _ = s.Search(queries.Row(qi%queries.N), opts, dst[:0])
		qi++
	})
	if allocs != 0 {
		t.Fatalf("steady-state quantized Search allocated %.1f times per op, want 0", allocs)
	}
}

// TestTreeSearchSteadyStateAllocs pins Tree.Search (which must allocate the
// returned results slice, but nothing else) at exactly one allocation per
// call in steady state.
func TestTreeSearchSteadyStateAllocs(t *testing.T) {
	tree, queries := batchSetup(t, 2000, 8, 22)
	opts := core.SearchOptions{K: 10}
	for qi := 0; qi < queries.N; qi++ {
		tree.Search(queries.Row(qi), opts)
	}
	qi := 0
	allocs := testing.AllocsPerRun(100, func() {
		tree.Search(queries.Row(qi%queries.N), opts)
		qi++
	})
	if allocs > 1 {
		t.Fatalf("steady-state Tree.Search allocated %.1f times per op, want <= 1 (the results slice)", allocs)
	}
}
