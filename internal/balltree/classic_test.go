package balltree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"p2h/internal/core"
	"p2h/internal/dataset"
	"p2h/internal/vec"
)

// bruteNN/FN/MIP compute reference answers over the tree's lifted storage.
func bruteResults(data *vec.Matrix, q []float32, k int, score func(x []float32) float64, largest bool) []core.Result {
	all := make([]core.Result, data.N)
	for i := 0; i < data.N; i++ {
		all[i] = core.Result{ID: int32(i), Dist: score(data.Row(i))}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Dist != all[j].Dist {
			if largest {
				return all[i].Dist > all[j].Dist
			}
			return all[i].Dist < all[j].Dist
		}
		return all[i].ID < all[j].ID
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

func classicSetup(t *testing.T, seed int64) (*Tree, *vec.Matrix, *vec.Matrix) {
	t.Helper()
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 16, Clusters: 8}, 800, seed)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 8, seed+1)
	return Build(data, Config{LeafSize: 25, Seed: seed}), data, queries
}

func distsEqual(a, b []core.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		scale := math.Max(1, math.Max(math.Abs(a[i].Dist), math.Abs(b[i].Dist)))
		if math.Abs(a[i].Dist-b[i].Dist) > 1e-6*scale {
			return false
		}
	}
	return true
}

func TestSearchNNExact(t *testing.T) {
	tree, data, queries := classicSetup(t, 1)
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		got, st := tree.SearchNN(q, 5)
		want := bruteResults(data, q, 5, func(x []float32) float64 { return vec.Dist(q, x) }, false)
		if !distsEqual(got, want) {
			t.Fatalf("query %d: NN %v want %v", qi, got, want)
		}
		if st.Candidates == 0 {
			t.Fatal("no candidates verified")
		}
	}
}

func TestSearchFNExact(t *testing.T) {
	tree, data, queries := classicSetup(t, 2)
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		got, _ := tree.SearchFN(q, 5)
		want := bruteResults(data, q, 5, func(x []float32) float64 { return vec.Dist(q, x) }, true)
		if !distsEqual(got, want) {
			t.Fatalf("query %d: FN %v want %v", qi, got, want)
		}
		// Furthest distances are sorted descending.
		for i := 1; i < len(got); i++ {
			if got[i].Dist > got[i-1].Dist {
				t.Fatalf("FN results not descending: %v", got)
			}
		}
	}
}

func TestSearchMIPExact(t *testing.T) {
	tree, data, queries := classicSetup(t, 3)
	for qi := 0; qi < queries.N; qi++ {
		q := queries.Row(qi)
		got, _ := tree.SearchMIP(q, 5)
		want := bruteResults(data, q, 5, func(x []float32) float64 { return vec.Dot(q, x) }, true)
		if !distsEqual(got, want) {
			t.Fatalf("query %d: MIP %v want %v", qi, got, want)
		}
	}
}

func TestClassicSearchesPrune(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 12, Clusters: 16}, 5000, 4)
	data := raw.AppendOnes()
	tree := Build(data, Config{LeafSize: 50, Seed: 4})
	q := data.Row(17) // a data point: NN/MIP pruning should be strong
	_, nn := tree.SearchNN(q, 1)
	_, mip := tree.SearchMIP(q, 1)
	if nn.PrunedNodes == 0 || mip.PrunedNodes == 0 {
		t.Fatalf("expected pruning: nn=%d mip=%d", nn.PrunedNodes, mip.PrunedNodes)
	}
	if nn.Candidates >= int64(data.N) {
		t.Fatal("NN verified everything")
	}
}

func TestClassicKDefaultsAndOverflow(t *testing.T) {
	tree, data, queries := classicSetup(t, 5)
	q := queries.Row(0)
	res, _ := tree.SearchNN(q, 0) // k <= 0 means 1
	if len(res) != 1 {
		t.Fatalf("k=0 should return 1 result, got %d", len(res))
	}
	res, _ = tree.SearchFN(q, data.N+10)
	if len(res) != data.N {
		t.Fatalf("k>n should return all %d, got %d", data.N, len(res))
	}
}

// TestQuickClassicBoundsSound: for random nodes and queries, the NN bound
// never exceeds the true minimum distance, the FN bound never undercuts the
// true maximum, and the MIPS bound never undercuts the true maximum inner
// product.
func TestQuickClassicBoundsSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 20
		d := rng.Intn(10) + 2
		raw := dataset.Generate(dataset.Spec{Name: "q", Family: dataset.FamilyUniform, RawDim: d}, n, seed)
		data := raw.AppendOnes()
		queries := dataset.GenerateQueries(raw, 2, seed+1)
		tree := Build(data, Config{LeafSize: 12, Seed: seed})
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			ok := true
			var walk func(ni int32)
			walk = func(ni int32) {
				nd := &tree.nodes[ni]
				c := tree.center(ni)
				minD, maxD := math.Inf(1), math.Inf(-1)
				maxIP := math.Inf(-1)
				for pos := nd.start; pos < nd.end; pos++ {
					x := tree.points.Row(int(pos))
					dd := vec.Dist(q, x)
					ip := vec.Dot(q, x)
					minD = math.Min(minD, dd)
					maxD = math.Max(maxD, dd)
					maxIP = math.Max(maxIP, ip)
				}
				tol := 1e-6 * (1 + maxD)
				if boundNN(q, c, nd.radius) > minD+tol {
					ok = false
				}
				if boundFN(q, c, nd.radius) < maxD-tol {
					ok = false
				}
				if boundMIP(q, c, nd.radius) < maxIP-tol {
					ok = false
				}
				if !nd.isLeaf() {
					walk(nd.left)
					walk(nd.right)
				}
			}
			walk(0)
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
