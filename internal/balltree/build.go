package balltree

import (
	"math/rand"

	"p2h/internal/partition"
	"p2h/internal/quant"
	"p2h/internal/vec"
)

// Build constructs a Ball-Tree over the lifted data matrix (rows x = (p; 1))
// with Algorithm 1's recursive seed-grow construction. The input matrix is
// not modified; the tree keeps a reordered copy so every leaf occupies a
// contiguous range of rows. Nodes are appended to the flat arena in preorder,
// so the root is index 0 and both children of a node sit at larger indices.
func Build(data *vec.Matrix, cfg Config) *Tree {
	if data == nil || data.N == 0 {
		panic("balltree: empty data")
	}
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Tree{
		ids:      make([]int32, data.N),
		leafSize: cfg.LeafSize,
	}
	for i := range t.ids {
		t.ids[i] = int32(i)
	}
	b := &builder{data: data, rng: rng, tree: t}
	b.build(t.ids, 0)
	t.centers = &vec.Matrix{Data: b.centers, N: len(t.nodes), D: data.D}
	// Materialize the reordered copy so leaves scan sequentially.
	t.points = data.SubsetRows(t.ids)
	if cfg.Quantize {
		t.qz = quant.NewQuantizer(t.points)
		t.codes = t.qz.EncodeMatrix(t.points)
	}
	return t
}

type builder struct {
	data    *vec.Matrix
	rng     *rand.Rand
	tree    *Tree
	centers []float32 // packed centers, row ni = center of arena node ni
}

// build recursively constructs the subtree over ids[0:], which occupies
// positions [offset, offset+len(ids)) of the final reordered storage.
// It partitions ids in place (Algorithm 1) and returns the arena index of
// the subtree root.
func (b *builder) build(ids []int32, offset int32) int32 {
	ni := int32(len(b.tree.nodes))
	b.tree.nodes = append(b.tree.nodes, nodeRec{
		start: offset,
		end:   offset + int32(len(ids)),
		left:  noChild,
		right: noChild,
	})
	d := b.data.D
	b.centers = append(b.centers, b.data.Centroid(ids)...)
	_, maxDist := b.data.MaxDistFrom(ids, b.centers[int(ni)*d:(int(ni)+1)*d])
	b.tree.nodes[ni].radius = maxDist * (1 + radiusSlack)

	if len(ids) <= b.tree.leafSize {
		b.tree.leaves++
		return ni
	}

	nl := partition.SeedGrow(b.data, ids, b.rng)
	left := b.build(ids[:nl], offset)
	right := b.build(ids[nl:], offset+int32(nl))
	// Re-index after the recursive appends: the arena may have been regrown.
	b.tree.nodes[ni].left = left
	b.tree.nodes[ni].right = right
	return ni
}
