package balltree

import (
	"math/rand"

	"p2h/internal/partition"
	"p2h/internal/vec"
)

// Build constructs a Ball-Tree over the lifted data matrix (rows x = (p; 1))
// with Algorithm 1's recursive seed-grow construction. The input matrix is
// not modified; the tree keeps a reordered copy so every leaf occupies a
// contiguous range of rows.
func Build(data *vec.Matrix, cfg Config) *Tree {
	if data == nil || data.N == 0 {
		panic("balltree: empty data")
	}
	cfg = cfg.normalized()
	rng := rand.New(rand.NewSource(cfg.Seed))
	t := &Tree{
		ids:      make([]int32, data.N),
		leafSize: cfg.LeafSize,
	}
	for i := range t.ids {
		t.ids[i] = int32(i)
	}
	b := &builder{data: data, rng: rng, tree: t}
	t.root = b.build(t.ids, 0)
	// Materialize the reordered copy so leaves scan sequentially.
	t.points = data.SubsetRows(t.ids)
	return t
}

type builder struct {
	data *vec.Matrix
	rng  *rand.Rand
	tree *Tree
}

// build recursively constructs the subtree over ids[0:], which occupies
// positions [offset, offset+len(ids)) of the final reordered storage.
// It partitions ids in place (Algorithm 1).
func (b *builder) build(ids []int32, offset int32) *node {
	n := &node{
		center: b.data.Centroid(ids),
		start:  offset,
		end:    offset + int32(len(ids)),
	}
	_, maxDist := b.data.MaxDistFrom(ids, n.center)
	n.radius = maxDist * (1 + radiusSlack)
	b.tree.nodes++

	if len(ids) <= b.tree.leafSize {
		b.tree.leaves++
		return n
	}

	nl := partition.SeedGrow(b.data, ids, b.rng)
	n.left = b.build(ids[:nl], offset)
	n.right = b.build(ids[nl:], offset+int32(nl))
	return n
}
