package balltree

import (
	"math"

	"p2h/internal/core"
	"p2h/internal/vec"
)

// This file adds the classic Ball-Tree searches the paper's related work
// builds on (Omohundro [49]; Ram & Gray [51]): Euclidean nearest neighbor,
// Euclidean furthest neighbor, and maximum inner product search. They share
// the tree built for P2HNNS — one structure, four query types — which is the
// "revitalizing Ball-Tree" theme in code.
//
// All three run over the *lifted* vectors x = (p; 1) the tree stores. For
// Euclidean queries the lift is harmless as long as the query is lifted the
// same way (the constant coordinate cancels in every difference); for MIPS
// the caller chooses the lift semantics (a lifted query (w; b) scores
// <w, p> + b, which is often exactly what applications want).

// SearchNN returns the k indexed points nearest to q in Euclidean distance,
// using the classic bound: every point of a node is at least
// ||q - c|| - r away. q must have the lifted dimensionality Dim().
func (t *Tree) SearchNN(q []float32, k int) ([]core.Result, core.Stats) {
	if k <= 0 {
		k = 1
	}
	var st core.Stats
	tk := core.NewTopK(k)
	s := &classicSearcher{tree: t, q: q, tk: tk, st: &st}
	s.visitNN(0)
	return tk.Results(), st
}

// SearchFN returns the k indexed points furthest from q in Euclidean
// distance, using the mirror bound: every point of a node is at most
// ||q - c|| + r away.
func (t *Tree) SearchFN(q []float32, k int) ([]core.Result, core.Stats) {
	if k <= 0 {
		k = 1
	}
	var st core.Stats
	tk := core.NewTopKMax(k)
	s := &classicSearcher{tree: t, q: q, tkMax: tk, st: &st}
	s.visitFN(0)
	return tk.Results(), st
}

// SearchMIP returns the k indexed points with the largest inner product
// <q, x>, using the Cauchy-Schwarz bound <q, x> <= <q, c> + ||q||·r
// (Ram & Gray's ball bound for MIPS). Result distances hold the inner
// products.
func (t *Tree) SearchMIP(q []float32, k int) ([]core.Result, core.Stats) {
	if k <= 0 {
		k = 1
	}
	var st core.Stats
	tk := core.NewTopKMax(k)
	s := &classicSearcher{tree: t, q: q, qnorm: vec.Norm(q), tkMax: tk, st: &st}
	s.visitMIP(0)
	return tk.Results(), st
}

type classicSearcher struct {
	tree  *Tree
	q     []float32
	qnorm float64
	tk    *core.TopK
	tkMax *core.TopKMax
	st    *core.Stats
	buf   []float64
}

func (s *classicSearcher) scratch(m int) []float64 {
	if cap(s.buf) < m {
		s.buf = make([]float64, m)
	}
	return s.buf[:m]
}

// leafRows returns the contiguous row block of a leaf.
func (s *classicSearcher) leafRows(n *nodeRec) []float32 {
	d := s.tree.points.D
	return s.tree.points.Data[int(n.start)*d : int(n.end)*d]
}

func (s *classicSearcher) visitNN(ni int32) {
	s.st.NodesVisited++
	n := &s.tree.nodes[ni]
	dc := vec.Dist(s.q, s.tree.center(ni))
	s.st.IPCount++
	if dc-n.radius >= s.tk.Lambda() {
		s.st.PrunedNodes++
		return
	}
	if n.isLeaf() {
		s.st.LeavesVisited++
		m := int(n.count())
		dists := s.scratch(m)
		vec.SqDistBlock(s.q, s.leafRows(n), dists)
		s.st.IPCount += int64(m)
		s.st.Candidates += int64(m)
		for i := 0; i < m; i++ {
			s.tk.Push(s.tree.ids[int(n.start)+i], math.Sqrt(dists[i]))
		}
		return
	}
	// Closer child first: it is likelier to shrink lambda early.
	first, second := n.left, n.right
	if vec.SqDist(s.q, s.tree.center(n.right)) < vec.SqDist(s.q, s.tree.center(n.left)) {
		first, second = n.right, n.left
	}
	s.st.IPCount += 2
	s.visitNN(first)
	s.visitNN(second)
}

func (s *classicSearcher) visitFN(ni int32) {
	s.st.NodesVisited++
	n := &s.tree.nodes[ni]
	dc := vec.Dist(s.q, s.tree.center(ni))
	s.st.IPCount++
	if dc+n.radius <= s.tkMax.Lambda() {
		s.st.PrunedNodes++
		return
	}
	if n.isLeaf() {
		s.st.LeavesVisited++
		m := int(n.count())
		dists := s.scratch(m)
		vec.SqDistBlock(s.q, s.leafRows(n), dists)
		s.st.IPCount += int64(m)
		s.st.Candidates += int64(m)
		for i := 0; i < m; i++ {
			s.tkMax.Push(s.tree.ids[int(n.start)+i], math.Sqrt(dists[i]))
		}
		return
	}
	// Farther child first.
	first, second := n.left, n.right
	if vec.SqDist(s.q, s.tree.center(n.right)) > vec.SqDist(s.q, s.tree.center(n.left)) {
		first, second = n.right, n.left
	}
	s.st.IPCount += 2
	s.visitFN(first)
	s.visitFN(second)
}

func (s *classicSearcher) visitMIP(ni int32) {
	s.st.NodesVisited++
	n := &s.tree.nodes[ni]
	ip := vec.Dot(s.q, s.tree.center(ni))
	s.st.IPCount++
	if ip+s.qnorm*n.radius <= s.tkMax.Lambda() {
		s.st.PrunedNodes++
		return
	}
	if n.isLeaf() {
		s.st.LeavesVisited++
		m := int(n.count())
		dists := s.scratch(m)
		vec.DotBlock(s.q, s.leafRows(n), dists)
		s.st.IPCount += int64(m)
		s.st.Candidates += int64(m)
		for i := 0; i < m; i++ {
			s.tkMax.Push(s.tree.ids[int(n.start)+i], dists[i])
		}
		return
	}
	// Larger-inner-product child first.
	ipl := vec.Dot(s.q, s.tree.center(n.left))
	ipr := vec.Dot(s.q, s.tree.center(n.right))
	s.st.IPCount += 2
	first, second := n.left, n.right
	if ipr > ipl {
		first, second = n.right, n.left
	}
	s.visitMIP(first)
	s.visitMIP(second)
}

// boundNN exposes the NN bound for tests.
func boundNN(q []float32, center []float32, radius float64) float64 {
	return math.Max(vec.Dist(q, center)-radius, 0)
}

// boundFN exposes the FN bound for tests.
func boundFN(q []float32, center []float32, radius float64) float64 {
	return vec.Dist(q, center) + radius
}

// boundMIP exposes the MIPS bound for tests.
func boundMIP(q []float32, center []float32, radius float64) float64 {
	return vec.Dot(q, center) + vec.Norm(q)*radius
}
