package balltree

import (
	"math"
	"time"

	"p2h/internal/core"
	"p2h/internal/vec"
)

// Search answers a top-k P2HNNS query with Algorithm 3: depth-first
// branch-and-bound over the ball hierarchy, pruning any node whose
// node-level ball bound (Theorem 2)
//
//	lb = max(|<q, N.c>| - ||q|| * N.r, 0)
//
// is at least the current k-th best distance q.λ. The inner product of the
// query with a node center is computed once per visited node and handed to
// the recursion, so a visited internal node costs exactly two O(d) inner
// products (one per child) — the cost Lemma 2 halves for BC-Tree. Leaf
// verification is one vec.DotBlock call over the leaf's contiguous rows.
func (t *Tree) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	opts = opts.Normalized()
	var st core.Stats
	tk := core.NewTopK(opts.K)
	s := &searcher{tree: t, q: q, qnorm: vec.Norm(q), tk: tk, st: &st, opts: opts}
	ip := vec.Dot(q, t.center(0))
	st.IPCount++
	s.visit(0, ip)
	return tk.Results(), st
}

type searcher struct {
	tree  *Tree
	q     []float32
	qnorm float64
	tk    *core.TopK
	st    *core.Stats
	opts  core.SearchOptions
	buf   []float64 // per-leaf scratch for blocked inner products
}

// scratch returns a distance buffer of at least m entries, reused across the
// leaves one query visits.
func (s *searcher) scratch(m int) []float64 {
	if cap(s.buf) < m {
		s.buf = make([]float64, m)
	}
	return s.buf[:m]
}

// visit implements SubBallTreeSearch. ip is <q, center(ni)>, already computed
// by the caller.
func (s *searcher) visit(ni int32, ip float64) {
	if !s.opts.BudgetLeft(s.st.Candidates) {
		return
	}
	s.st.NodesVisited++
	n := &s.tree.nodes[ni]
	lb := math.Abs(ip) - s.qnorm*n.radius
	if lb >= s.tk.Lambda() { // lb < 0 < Lambda never prunes, no max needed
		s.st.PrunedNodes++
		return
	}
	if n.isLeaf() {
		s.scanLeaf(n)
		return
	}

	var start time.Time
	if s.opts.Profile != nil {
		start = time.Now()
	}
	ipl := vec.Dot(s.q, s.tree.center(n.left))
	ipr := vec.Dot(s.q, s.tree.center(n.right))
	s.st.IPCount += 2
	if s.opts.Profile != nil {
		s.opts.Profile.Add(core.PhaseBound, time.Since(start))
	}

	first, second := n.left, n.right
	ipf, ips := ipl, ipr
	if s.preferRight(n, ipl, ipr) {
		first, second = n.right, n.left
		ipf, ips = ipr, ipl
	}
	s.visit(first, ipf)
	s.visit(second, ips)
}

// preferRight decides the branch order of Algorithm 3 lines 11-16.
func (s *searcher) preferRight(n *nodeRec, ipl, ipr float64) bool {
	if s.opts.Preference == core.PrefLowerBound {
		lbl := math.Abs(ipl) - s.qnorm*s.tree.nodes[n.left].radius
		lbr := math.Abs(ipr) - s.qnorm*s.tree.nodes[n.right].radius
		if lbl < 0 {
			lbl = 0
		}
		if lbr < 0 {
			lbr = 0
		}
		return lbr < lbl
	}
	return math.Abs(ipr) < math.Abs(ipl)
}

// scanLeaf is ExhaustiveScan (Algorithm 3 lines 17-20) over the contiguous
// storage of the leaf, respecting the candidate budget. Without a filter the
// whole (budget-capped) block is verified by one blocked kernel call.
func (s *searcher) scanLeaf(n *nodeRec) {
	s.st.LeavesVisited++
	var start time.Time
	if s.opts.Profile != nil {
		start = time.Now()
	}

	if s.opts.Filter != nil {
		s.scanLeafFiltered(n)
	} else {
		m := int(n.count())
		if s.opts.Budget > 0 {
			if left := int(int64(s.opts.Budget) - s.st.Candidates); left < m {
				m = left
			}
		}
		if m > 0 {
			d := s.tree.points.D
			rows := s.tree.points.Data[int(n.start)*d : (int(n.start)+m)*d]
			dists := s.scratch(m)
			vec.DotBlock(s.q, rows, dists)
			s.st.IPCount += int64(m)
			s.st.Candidates += int64(m)
			for i := 0; i < m; i++ {
				s.tk.Push(s.tree.ids[int(n.start)+i], math.Abs(dists[i]))
			}
		}
	}

	if s.opts.Profile != nil {
		s.opts.Profile.Add(core.PhaseVerify, time.Since(start))
	}
}

// scanLeafFiltered is the point-at-a-time path for filtered queries: rejected
// ids must not cost an inner product nor count against the budget.
func (s *searcher) scanLeafFiltered(n *nodeRec) {
	for pos := n.start; pos < n.end; pos++ {
		if !s.opts.BudgetLeft(s.st.Candidates) {
			break
		}
		id := s.tree.ids[pos]
		if !s.opts.Filter(id) {
			continue
		}
		d := math.Abs(vec.Dot(s.q, s.tree.points.Row(int(pos))))
		s.st.IPCount++
		s.st.Candidates++
		s.tk.Push(id, d)
	}
}
