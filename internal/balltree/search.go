package balltree

import (
	"math"
	"time"

	"p2h/internal/attr"
	"p2h/internal/core"
	"p2h/internal/quant"
	"p2h/internal/vec"
)

// Search answers a top-k P2HNNS query with Algorithm 3: depth-first
// branch-and-bound over the ball hierarchy, pruning any node whose
// node-level ball bound (Theorem 2)
//
//	lb = max(|<q, N.c>| - ||q|| * N.r, 0)
//
// is strictly above the current k-th best distance q.λ. The inner product of
// the query with a node center is computed once per visited node and handed
// to the recursion, so a visited internal node costs exactly two O(d) inner
// products (one per child) — the cost Lemma 2 halves for BC-Tree. Leaf
// verification is one vec.DotBlock call over the leaf's contiguous rows.
//
// Search runs on a pooled Searcher, so a steady-state call's only allocation
// is the returned results slice; use a Searcher directly to eliminate that
// one too.
func (t *Tree) Search(q []float32, opts core.SearchOptions) ([]core.Result, core.Stats) {
	s := t.acquireSearcher()
	res, st := s.Search(q, opts, nil)
	t.releaseSearcher(s)
	return res, st
}

// Searcher is a reusable single-query executor over one tree: the top-k
// collector and the per-leaf scratch persist across calls, so steady-state
// search allocates nothing beyond growth of the caller's dst. A Searcher is
// not safe for concurrent use; acquire one per goroutine (Tree.Search pools
// them automatically).
type Searcher struct {
	tree  *Tree
	q     []float32
	qnorm float64
	tk    core.TopK
	st    core.Stats
	opts  core.SearchOptions
	buf   []float64 // per-leaf scratch for blocked inner products

	// Quantized-filter state, live only while useQuant is set: qf is the
	// query's fitted integer filter, sel the per-leaf survivor scratch.
	qf       quant.CodeFilter
	sel      []int32
	useQuant bool

	// Predicate state, live only while opts.Pred is set on a tree with an
	// attribute store: pred is the predicate compiled against the store,
	// usePush gates the per-node summary skip.
	pred    *attr.Prog
	usePush bool
}

// NewSearcher returns a reusable executor bound to the tree.
func (t *Tree) NewSearcher() *Searcher { return &Searcher{tree: t} }

func (t *Tree) acquireSearcher() *Searcher {
	s := t.searchers.Get()
	s.tree = t
	return s
}

func (t *Tree) releaseSearcher(s *Searcher) { t.searchers.Put(s) }

// Search answers one query, appending the top-k results (ascending
// (Dist, ID)) to dst. Passing a recycled dst makes the call allocation-free
// in steady state.
func (s *Searcher) Search(q []float32, opts core.SearchOptions, dst []core.Result) ([]core.Result, core.Stats) {
	opts = opts.Normalized()
	s.q = q
	s.qnorm = vec.Norm(q)
	s.opts = opts
	s.st = core.Stats{}
	s.tk.Init(opts.K)
	run := s.preparePred()
	// The quantized filter applies to exact scans only: budgeted searches
	// keep the float path so "candidates verified" keeps meaning the same
	// work, and Filter-closure searches stay point-at-a-time. A declarative
	// predicate composes with it (rows are predicate-filtered before the
	// code kernel). Results are identical either way (the filter is exact),
	// which the quantized-vs-float equality tests pin down.
	s.useQuant = s.tree.qz != nil && opts.Filter == nil && opts.Budget <= 0 &&
		!opts.DisableQuantFilter
	if run {
		if s.useQuant {
			s.tree.qz.Fit(&s.qf, q)
		}
		ip := vec.Dot(q, s.tree.center(0))
		s.st.IPCount++
		s.visit(0, ip)
	}
	// Drop caller-owned references so the pooled Searcher cannot pin them.
	s.q = nil
	s.opts.Filter = nil
	s.opts.Profile = nil
	s.opts.Cancel = nil
	s.opts.Pred = nil
	s.pred = nil
	s.usePush = false
	return s.tk.DrainInto(dst), s.st
}

// preparePred resolves opts.Pred against the tree's attribute store. It
// reports whether the traversal should run at all: a predicate on a tree
// without attributes constant-folds against the empty payload — it either
// accepts every point (and is dropped) or rejects every point (empty result,
// no traversal).
func (s *Searcher) preparePred() bool {
	s.pred, s.usePush = nil, false
	if s.opts.Pred == nil {
		return true
	}
	if s.tree.attrs == nil {
		return s.opts.Pred.MatchesEmpty()
	}
	s.pred = s.tree.attrs.Compile(s.opts.Pred)
	s.usePush = s.tree.attrSums != nil
	return true
}

// accept reports whether id passes the predicate and the caller filter —
// exactly the acceptance an equivalent Filter closure would compute, which
// is what keeps pushdown results bitwise equal to post-filtering.
func (s *Searcher) accept(id int32) bool {
	if s.pred != nil && !s.pred.Match(id) {
		return false
	}
	return s.opts.Filter == nil || s.opts.Filter(id)
}

// scratch returns a distance buffer of at least m entries, reused across the
// leaves one query visits.
func (s *Searcher) scratch(m int) []float64 {
	if cap(s.buf) < m {
		s.buf = make([]float64, m)
	}
	return s.buf[:m]
}

// visit implements SubBallTreeSearch. ip is <q, center(ni)>, already computed
// by the caller. Pruning is strict (lb > λ): a subtree tied with the current
// k-th best distance still reaches the collector, whose canonical (Dist, ID)
// order then decides — the invariant that makes exact results independent of
// traversal order (see internal/exec).
func (s *Searcher) visit(ni int32, ip float64) {
	if !s.opts.BudgetLeft(s.st.Candidates) {
		return
	}
	if s.opts.Canceled() {
		return // deadline fired: keep what the collector already holds
	}
	if s.usePush && s.tree.attrSums.Node(ni, s.pred) == attr.TriNo {
		// Predicate pushdown: the node's attribute summaries prove no point
		// under it can match, so the whole subtree is skipped. The skip only
		// removes points a per-row filter would have rejected anyway, so the
		// accepted-candidate sequence — and with it the results, budgeted or
		// not — is unchanged.
		n := &s.tree.nodes[ni]
		s.st.FilterSkippedNodes++
		s.st.FilterSkippedPoints += int64(n.count())
		return
	}
	s.st.NodesVisited++
	n := &s.tree.nodes[ni]
	lb := math.Abs(ip) - s.qnorm*n.radius
	if lb > s.tk.Lambda() { // lb < 0 < Lambda never prunes, no max needed
		s.st.PrunedNodes++
		return
	}
	if n.isLeaf() {
		s.scanLeaf(n)
		return
	}

	var start time.Time
	if s.opts.Profile != nil {
		start = time.Now()
	}
	ipl := vec.Dot(s.q, s.tree.center(n.left))
	ipr := vec.Dot(s.q, s.tree.center(n.right))
	s.st.IPCount += 2
	if s.opts.Profile != nil {
		s.opts.Profile.Add(core.PhaseBound, time.Since(start))
	}

	first, second := n.left, n.right
	ipf, ips := ipl, ipr
	if s.preferRight(n, ipl, ipr) {
		first, second = n.right, n.left
		ipf, ips = ipr, ipl
	}
	s.visit(first, ipf)
	s.visit(second, ips)
}

// preferRight decides the branch order of Algorithm 3 lines 11-16.
func (s *Searcher) preferRight(n *nodeRec, ipl, ipr float64) bool {
	if s.opts.Preference == core.PrefLowerBound {
		lbl := math.Abs(ipl) - s.qnorm*s.tree.nodes[n.left].radius
		lbr := math.Abs(ipr) - s.qnorm*s.tree.nodes[n.right].radius
		if lbl < 0 {
			lbl = 0
		}
		if lbr < 0 {
			lbr = 0
		}
		return lbr < lbl
	}
	return math.Abs(ipr) < math.Abs(ipl)
}

// scanLeaf is ExhaustiveScan (Algorithm 3 lines 17-20) over the contiguous
// storage of the leaf, respecting the candidate budget. Without a filter the
// whole (budget-capped) block is verified by one blocked kernel call.
func (s *Searcher) scanLeaf(n *nodeRec) {
	s.st.LeavesVisited++
	// The quantized filter needs a finite lambda to prune against; until the
	// heap fills, leaves scan on the float path.
	if s.useQuant && s.tk.Full() {
		if s.pred != nil {
			s.scanLeafQuantPred(n)
		} else {
			s.scanLeafQuant(n)
		}
		return
	}
	var start time.Time
	if s.opts.Profile != nil {
		start = time.Now()
	}

	if s.opts.Filter != nil || s.pred != nil {
		s.scanLeafFiltered(n)
	} else {
		m := int(n.count())
		if s.opts.Budget > 0 {
			if left := int(int64(s.opts.Budget) - s.st.Candidates); left < m {
				m = left
			}
		}
		if m > 0 {
			d := s.tree.points.D
			rows := s.tree.points.Data[int(n.start)*d : (int(n.start)+m)*d]
			dists := s.scratch(m)
			vec.DotBlock(s.q, rows, dists)
			s.st.IPCount += int64(m)
			s.st.Candidates += int64(m)
			for i := 0; i < m; i++ {
				s.tk.Push(s.tree.ids[int(n.start)+i], math.Abs(dists[i]))
			}
		}
	}

	if s.opts.Profile != nil {
		s.opts.Profile.Add(core.PhaseVerify, time.Since(start))
	}
}

// scanLeafQuant is the quantized leaf scan: one integer-kernel pass over the
// leaf's code block (vec.CodeSelect) removes every row whose error-bounded
// approximate score provably cannot beat the current k-th best, and only the
// survivors are verified against the float rows. When nothing is pruned the
// whole block goes through the same vec.DotBlock call as the float path, so
// verified distances are bitwise identical to an unquantized search.
func (s *Searcher) scanLeafQuant(n *nodeRec) {
	m := int(n.count())
	if m == 0 {
		return
	}
	d := s.tree.points.D
	start64 := int(n.start) * d
	var t0 time.Time
	if s.opts.Profile != nil {
		t0 = time.Now()
	}
	codes := s.tree.codes[start64 : start64+m*d]
	s.sel = vec.CodeSelect(codes, d, s.qf.W, s.qf.Base, s.qf.InvS, s.qf.Eps,
		s.tk.Lambda(), s.sel[:0])
	s.st.PrunedPoints += int64(m - len(s.sel))
	if s.opts.Profile != nil {
		s.opts.Profile.Add(core.PhaseBound, time.Since(t0))
		t0 = time.Now()
	}

	if len(s.sel) == m {
		rows := s.tree.points.Data[start64 : start64+m*d]
		dists := s.scratch(m)
		vec.DotBlock(s.q, rows, dists)
		for i := 0; i < m; i++ {
			s.tk.Push(s.tree.ids[int(n.start)+i], math.Abs(dists[i]))
		}
	} else {
		for _, i := range s.sel {
			pos := int(n.start) + int(i)
			dist := math.Abs(vec.Dot(s.q, s.tree.points.Row(pos)))
			s.tk.Push(s.tree.ids[pos], dist)
		}
	}
	s.st.IPCount += int64(len(s.sel))
	s.st.Candidates += int64(len(s.sel))
	if s.opts.Profile != nil {
		s.opts.Profile.Add(core.PhaseVerify, time.Since(t0))
	}
}

// scanLeafFiltered is the point-at-a-time path for filtered queries (a
// Filter closure, a compiled predicate, or both): rejected ids must not cost
// an inner product nor count against the budget.
func (s *Searcher) scanLeafFiltered(n *nodeRec) {
	for pos := n.start; pos < n.end; pos++ {
		if !s.opts.BudgetLeft(s.st.Candidates) {
			break
		}
		id := s.tree.ids[pos]
		if !s.accept(id) {
			continue
		}
		d := math.Abs(vec.Dot(s.q, s.tree.points.Row(int(pos))))
		s.st.IPCount++
		s.st.Candidates++
		s.tk.Push(id, d)
	}
}

// scanLeafQuantPred is the quantized leaf scan for predicate searches: the
// leaf's rows are filtered by the compiled predicate first, the survivors go
// through the integer code kernel (vec.CodeSelectIdx) which removes rows the
// error-bounded approximate score proves cannot beat the current k-th best,
// and the remainder is verified in float. Exactness is unchanged — the code
// filter is conservative and predicate searches here are unbudgeted — so
// results stay bitwise equal to the unquantized filtered scan.
func (s *Searcher) scanLeafQuantPred(n *nodeRec) {
	m := int(n.count())
	if m == 0 {
		return
	}
	d := s.tree.points.D
	start64 := int(n.start) * d
	var t0 time.Time
	if s.opts.Profile != nil {
		t0 = time.Now()
	}
	if cap(s.sel) < m {
		s.sel = make([]int32, 0, m)
	}
	sel := s.sel[:0]
	for i := 0; i < m; i++ {
		if s.pred.Match(s.tree.ids[int(n.start)+i]) {
			sel = append(sel, int32(i))
		}
	}
	if len(sel) > 0 {
		codes := s.tree.codes[start64 : start64+m*d]
		before := len(sel)
		sel = vec.CodeSelectIdx(codes, d, s.qf.W, s.qf.Base, s.qf.InvS, s.qf.Eps,
			s.tk.Lambda(), sel)
		s.st.PrunedPoints += int64(before - len(sel))
	}
	s.sel = sel
	if s.opts.Profile != nil {
		s.opts.Profile.Add(core.PhaseBound, time.Since(t0))
		t0 = time.Now()
	}
	for _, i := range sel {
		pos := int(n.start) + int(i)
		dist := math.Abs(vec.Dot(s.q, s.tree.points.Row(pos)))
		s.tk.Push(s.tree.ids[pos], dist)
	}
	s.st.IPCount += int64(len(sel))
	s.st.Candidates += int64(len(sel))
	if s.opts.Profile != nil {
		s.opts.Profile.Add(core.PhaseVerify, time.Since(t0))
	}
}
