package balltree

import (
	"testing"

	"p2h/internal/core"
	"p2h/internal/dataset"
)

// TestSearchCancelImmediate pins the cooperative-cancellation contract: a
// Cancel that fires before the first node visit stops the traversal at once,
// returning whatever (possibly nothing) the collector holds, without panic.
func TestSearchCancelImmediate(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 12, Clusters: 8}, 800, 4)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 3, 5)
	tree := Build(data, Config{LeafSize: 25, Seed: 2})
	for i := 0; i < queries.N; i++ {
		res, st := tree.Search(queries.Row(i), core.SearchOptions{
			K:      5,
			Cancel: func() bool { return true },
		})
		if len(res) != 0 {
			t.Fatalf("query %d: immediate cancel verified %d results", i, len(res))
		}
		if st.Candidates != 0 || st.NodesVisited != 0 {
			t.Fatalf("query %d: immediate cancel did work: %+v", i, st)
		}
	}
}

// TestSearchCancelMidway cancels after a fixed number of polls and checks the
// search stops early yet returns valid (sorted, deduplicated) partial results.
func TestSearchCancelMidway(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 12, Clusters: 8}, 3000, 4)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 3, 5)
	tree := Build(data, Config{LeafSize: 25, Seed: 2})
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		_, full := tree.Search(q, core.SearchOptions{K: 5})
		polls := 0
		res, st := tree.Search(q, core.SearchOptions{
			K:      5,
			Cancel: func() bool { polls++; return polls > 4 },
		})
		if st.NodesVisited >= full.NodesVisited {
			t.Fatalf("query %d: canceled search visited %d nodes, full search %d",
				i, st.NodesVisited, full.NodesVisited)
		}
		for j := 1; j < len(res); j++ {
			if res[j].Dist < res[j-1].Dist {
				t.Fatalf("query %d: partial results unsorted: %v", i, res)
			}
		}
	}
}
