package balltree

import (
	"io"
	"os"

	"p2h/internal/binio"
	"p2h/internal/vec"
)

// magic identifies the Ball-Tree serialization format, version 1.
var magic = []byte("P2HBT001")

// maxSerialDim guards against corrupt headers allocating absurd buffers.
const maxSerialDim = 1 << 20

// Save writes the tree to w in a self-contained binary format that Load can
// restore without the original data matrix.
func (t *Tree) Save(w io.Writer) error {
	bw := binio.NewWriter(w)
	bw.Bytes(magic)
	bw.I32(int32(t.leafSize))
	bw.I32(int32(t.points.N))
	bw.I32(int32(t.points.D))
	bw.I32(int32(t.nodes))
	bw.I32(int32(t.leaves))
	bw.I32s(t.ids)
	bw.F32s(t.points.Data)
	saveNode(bw, t.root)
	return bw.Flush()
}

func saveNode(bw *binio.Writer, n *node) {
	if n.isLeaf() {
		bw.U8(1)
	} else {
		bw.U8(0)
	}
	bw.I32(n.start)
	bw.I32(n.end)
	bw.F64(n.radius)
	bw.F32s(n.center)
	if !n.isLeaf() {
		saveNode(bw, n.left)
		saveNode(bw, n.right)
	}
}

// Load restores a tree written by Save. The stream is validated structurally;
// corrupt input yields an error wrapping binio.ErrCorrupt.
func Load(r io.Reader) (*Tree, error) {
	br := binio.NewReader(r)
	br.Expect(magic)
	leafSize := int(br.I32())
	n := int(br.I32())
	d := int(br.I32())
	nodes := int(br.I32())
	leaves := int(br.I32())
	if err := br.Err(); err != nil {
		return nil, err
	}
	if leafSize <= 0 || n <= 0 || d <= 0 || d > maxSerialDim {
		br.Fail("bad header: leafSize=%d n=%d d=%d", leafSize, n, d)
		return nil, br.Err()
	}
	if nodes < 1 || nodes > 2*n || leaves < 1 || leaves > nodes {
		br.Fail("bad node counts: nodes=%d leaves=%d n=%d", nodes, leaves, n)
		return nil, br.Err()
	}
	t := &Tree{leafSize: leafSize, nodes: nodes, leaves: leaves}
	t.ids = br.I32s(n)
	if br.Err() == nil {
		for _, id := range t.ids {
			if id < 0 || int(id) >= n {
				br.Fail("id %d out of range", id)
				break
			}
		}
	}
	data := br.F32s(n * d)
	if err := br.Err(); err != nil {
		return nil, err
	}
	t.points = &vec.Matrix{Data: data, N: n, D: d}

	ld := &loader{br: br, n: int32(n), d: d, budget: nodes}
	t.root = ld.load()
	if err := br.Err(); err != nil {
		return nil, err
	}
	if ld.budget != 0 {
		br.Fail("node count mismatch: %d unread", ld.budget)
		return nil, br.Err()
	}
	if t.root.start != 0 || t.root.end != int32(n) {
		br.Fail("root range [%d,%d) != [0,%d)", t.root.start, t.root.end, n)
		return nil, br.Err()
	}
	return t, nil
}

type loader struct {
	br     *binio.Reader
	n      int32
	d      int
	budget int // remaining nodes allowed; bounds recursion on corrupt input
}

func (ld *loader) load() *node {
	if ld.budget <= 0 {
		ld.br.Fail("more nodes than declared")
		return &node{}
	}
	ld.budget--
	leaf := ld.br.U8()
	n := &node{start: ld.br.I32(), end: ld.br.I32(), radius: ld.br.F64()}
	n.center = ld.br.F32s(ld.d)
	if ld.br.Err() != nil {
		return n
	}
	if n.start < 0 || n.end <= n.start || n.end > ld.n {
		ld.br.Fail("node range [%d,%d) invalid for n=%d", n.start, n.end, ld.n)
		return n
	}
	if n.radius < 0 {
		ld.br.Fail("negative radius %v", n.radius)
		return n
	}
	if leaf == 1 {
		return n
	}
	n.left = ld.load()
	n.right = ld.load()
	if ld.br.Err() != nil {
		return n
	}
	if n.left.start != n.start || n.right.end != n.end || n.left.end != n.right.start {
		ld.br.Fail("children do not partition [%d,%d)", n.start, n.end)
	}
	return n
}

// SaveFile writes the tree to the named file.
func (t *Tree) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile restores a tree from the named file.
func LoadFile(path string) (*Tree, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
