package balltree

import (
	"math"
	"testing"

	"p2h/internal/dataset"
	"p2h/internal/vec"
)

func buildTestData(t *testing.T, family dataset.Family, n, d int, seed int64) (*vec.Matrix, *vec.Matrix) {
	t.Helper()
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: family, RawDim: d, Clusters: 8}, n, seed)
	queries := dataset.GenerateQueries(raw, 10, seed+1)
	return raw.AppendOnes(), queries
}

func TestBuildPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Build(vec.NewMatrix(0, 4), Config{})
}

func TestBuildBasicInvariants(t *testing.T) {
	data, _ := buildTestData(t, dataset.FamilyClustered, 500, 16, 1)
	tree := Build(data, Config{LeafSize: 20, Seed: 1})
	if tree.N() != 500 || tree.Dim() != 17 {
		t.Fatalf("tree %s", tree)
	}
	if tree.LeafSize() != 20 {
		t.Fatalf("leaf size %d", tree.LeafSize())
	}
	checkTreeInvariants(t, tree)
}

// checkTreeInvariants verifies the structural properties of Section III-B:
// child partition (Eqs. 4-5 via contiguous ranges), leaf size <= N0, and
// ball containment (Eq. 7): every point within its node's radius.
func checkTreeInvariants(t *testing.T, tree *Tree) {
	t.Helper()
	seen := make([]bool, tree.N())
	for _, id := range tree.ids {
		if seen[id] {
			t.Fatalf("id %d appears twice in reordering", id)
		}
		seen[id] = true
	}
	var walk func(ni int32)
	var leaves, nodes int
	walk = func(ni int32) {
		n := &tree.nodes[ni]
		nodes++
		if n.count() <= 0 {
			t.Fatal("empty node")
		}
		for pos := n.start; pos < n.end; pos++ {
			d := vec.Dist(tree.points.Row(int(pos)), tree.center(ni))
			if d > n.radius {
				t.Fatalf("point at pos %d outside ball: %v > %v", pos, d, n.radius)
			}
		}
		if n.isLeaf() {
			leaves++
			// Leaf size: leaves created by normal splits obey N0; degenerate
			// duplicate-heavy data may exceed it, but the test data is deduped
			// noise.
			if int(n.count()) > tree.leafSize {
				t.Fatalf("leaf size %d > N0=%d", n.count(), tree.leafSize)
			}
			return
		}
		l, r := &tree.nodes[n.left], &tree.nodes[n.right]
		if l.start != n.start || r.end != n.end || l.end != r.start {
			t.Fatalf("children do not partition parent: [%d,%d) -> [%d,%d)+[%d,%d)",
				n.start, n.end, l.start, l.end, r.start, r.end)
		}
		if n.left <= ni || n.right <= ni {
			t.Fatalf("children %d,%d not after parent %d in preorder arena", n.left, n.right, ni)
		}
		walk(n.left)
		walk(n.right)
	}
	walk(0)
	if leaves != tree.Leaves() || nodes != tree.Nodes() {
		t.Fatalf("node accounting: counted %d/%d, tree says %d/%d", nodes, leaves, tree.Nodes(), tree.Leaves())
	}
}

func TestBuildDefaultLeafSize(t *testing.T) {
	data, _ := buildTestData(t, dataset.FamilyUniform, 300, 8, 2)
	tree := Build(data, Config{})
	if tree.LeafSize() != DefaultLeafSize {
		t.Fatalf("default leaf size %d", tree.LeafSize())
	}
}

func TestBuildDeterministic(t *testing.T) {
	data, _ := buildTestData(t, dataset.FamilyClustered, 400, 12, 3)
	a := Build(data, Config{LeafSize: 25, Seed: 9})
	b := Build(data, Config{LeafSize: 25, Seed: 9})
	if a.Nodes() != b.Nodes() || a.Height() != b.Height() {
		t.Fatal("same seed must build identical trees")
	}
	for i := range a.ids {
		if a.ids[i] != b.ids[i] {
			t.Fatal("same seed must produce identical reordering")
		}
	}
}

func TestBuildAllIdenticalPoints(t *testing.T) {
	rows := make([][]float32, 64)
	for i := range rows {
		rows[i] = []float32{1, 2, 3}
	}
	data := vec.FromRows(rows).AppendOnes()
	tree := Build(data, Config{LeafSize: 8, Seed: 1})
	checkTreeInvariants(t, tree)
	if tree.nodes[0].radius > 1e-6 {
		t.Fatalf("radius of identical points should be ~0, got %v", tree.nodes[0].radius)
	}
}

func TestBuildSinglePoint(t *testing.T) {
	data := vec.FromRows([][]float32{{1, 2}}).AppendOnes()
	tree := Build(data, Config{})
	if tree.Nodes() != 1 || tree.Leaves() != 1 || tree.Height() != 1 {
		t.Fatalf("single point tree: %s", tree)
	}
}

func TestNodeCountBound(t *testing.T) {
	// With N0 >> 1 the paper notes the node count is well below n.
	data, _ := buildTestData(t, dataset.FamilyClustered, 2000, 10, 4)
	tree := Build(data, Config{LeafSize: 100, Seed: 1})
	if tree.Nodes() >= 2000/10 {
		t.Fatalf("too many nodes: %d", tree.Nodes())
	}
}

func TestIndexBytesReasonable(t *testing.T) {
	data, _ := buildTestData(t, dataset.FamilyClustered, 2000, 64, 5)
	tree := Build(data, Config{LeafSize: 100, Seed: 1})
	ib, db := tree.IndexBytes(), tree.DataBytes()
	if ib <= 0 || db <= 0 {
		t.Fatal("byte accounting must be positive")
	}
	// Paper Section V-D: index size much smaller than data size for N0=100.
	if ib >= db {
		t.Fatalf("index bytes %d should be below data bytes %d", ib, db)
	}
}

func TestRadiusMonotoneDown(t *testing.T) {
	// Radii shrink (weakly) from root to leaves on typical data: each child
	// covers a subset. Not a theorem for arbitrary centers, but holds for
	// centroid balls on blobby data; treat violations beyond slack as bugs.
	data, _ := buildTestData(t, dataset.FamilyClustered, 800, 8, 6)
	tree := Build(data, Config{LeafSize: 50, Seed: 2})
	var walk func(ni int32, parentR float64)
	walk = func(ni int32, parentR float64) {
		n := &tree.nodes[ni]
		if n.radius > parentR*2+1e-9 {
			t.Fatalf("child radius %v wildly exceeds parent %v", n.radius, parentR)
		}
		if !n.isLeaf() {
			walk(n.left, n.radius)
			walk(n.right, n.radius)
		}
	}
	walk(0, math.Inf(1))
}
