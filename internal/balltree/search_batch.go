package balltree

import (
	"fmt"
	"math"

	"p2h/internal/core"
	"p2h/internal/exec"
	"p2h/internal/vec"
)

// SearchBatch answers one top-k query per row of queries (lifted, unit
// normals — the same contract as Search) in a single shared traversal: the
// arena is walked once for the whole group, each node's bound is evaluated
// per query against that query's own λ, and a leaf's contiguous rows are
// verified for every query that reaches it by one vec.DotBlockMulti call —
// the leaf block streams from memory once per batch instead of once per
// query. Results and their ordering are bitwise identical to per-query
// Search calls (exact results are canonical; see internal/exec).
//
// Batches that are not exec.Eligible (budgeted, filtered, or profiled)
// fall back to the per-query path on one pooled Searcher, preserving
// per-query traversal semantics exactly.
func (t *Tree) SearchBatch(queries *vec.Matrix, opts core.SearchOptions) ([][]core.Result, []core.Stats) {
	if queries.D != t.points.D {
		panic(fmt.Sprintf("balltree: batch queries have dimension %d, want %d", queries.D, t.points.D))
	}
	opts = opts.Normalized()
	out := make([][]core.Result, queries.N)
	stats := make([]core.Stats, queries.N)
	if queries.N == 0 {
		return out, stats
	}
	if !exec.Eligible(opts) || queries.N == 1 {
		s := t.acquireSearcher()
		exec.Fallback(s, queries, opts, out, stats)
		t.releaseSearcher(s)
		return out, stats
	}
	b := t.batchers.Get()
	b.tree = t
	b.run(queries, opts, out, stats)
	t.batchers.Put(b)
	return out, stats
}

// batchSearcher carries one shared traversal's state; it is pooled on the
// tree and reaches a zero-allocation steady state for the traversal itself
// (the returned result slices are the only per-batch allocations).
type batchSearcher struct {
	tree    *Tree
	queries *vec.Matrix
	opts    core.SearchOptions
	scr     exec.BatchScratch
	stats   []core.Stats
	quant   bool // quantized leaf filtering active for this batch
}

func (b *batchSearcher) run(queries *vec.Matrix, opts core.SearchOptions, out [][]core.Result, stats []core.Stats) {
	t := b.tree
	nq := queries.N
	d := queries.D
	b.queries, b.opts, b.stats = queries, opts, stats
	scr := &b.scr
	scr.Reset(queries, opts.K)
	b.quant = t.qz != nil && !opts.DisableQuantFilter
	if b.quant {
		scr.ResetQuant(t.qz, queries)
	}

	mark := scr.Mark()
	act, ips := scr.Alloc(nq)
	for i := range act {
		act[i] = int32(i)
	}
	root := scr.Center64(0, t.center(0))
	for i := range act {
		ips[i] = vec.Dot64(scr.Q64[i*d:(i+1)*d], root)
		stats[i].IPCount++
	}
	b.visit(0, act, ips)
	scr.Release(mark)

	for i := 0; i < nq; i++ {
		out[i] = scr.Heaps[i].DrainInto(nil)
	}
	b.queries, b.stats = nil, nil
}

// visit walks one node for the whole group: the node-level ball bound
// filters the active set per query (strictly, as in Searcher.visit), leaves
// are verified for all survivors at once, and internal nodes recurse with
// per-child segments carved from the scratch arena. The branch order is the
// group's center-preference vote — order affects only pruning work, never
// results, which are canonical.
func (b *batchSearcher) visit(ni int32, act []int32, ips []float64) {
	t := b.tree
	scr := &b.scr
	n := &t.nodes[ni]
	live := 0
	for j, qi := range act {
		st := &b.stats[qi]
		st.NodesVisited++
		lb := math.Abs(ips[j]) - scr.QNorms[qi]*n.radius
		if lb > scr.Heaps[qi].Lambda() {
			st.PrunedNodes++
			continue
		}
		act[live], ips[live] = qi, ips[j]
		live++
	}
	if live == 0 {
		return
	}
	act, ips = act[:live], ips[:live]
	if n.isLeaf() {
		b.scanLeaf(n, act)
		return
	}

	mark := scr.Mark()
	actL, ipsL := scr.Alloc(live)
	actR, ipsR := scr.Alloc(live)
	copy(actL, act)
	copy(actR, act)
	d := b.queries.D
	cl64 := scr.Center64(0, t.center(n.left))
	cr64 := scr.Center64(1, t.center(n.right))
	var sumL, sumR float64
	for j, qi := range act {
		q64 := scr.Q64[int(qi)*d : (int(qi)+1)*d]
		ipl := vec.Dot64(q64, cl64)
		ipr := vec.Dot64(q64, cr64)
		b.stats[qi].IPCount += 2
		ipsL[j], ipsR[j] = ipl, ipr
		sumL += math.Abs(ipl)
		sumR += math.Abs(ipr)
	}
	if sumR < sumL {
		b.visit(n.right, actR, ipsR)
		b.visit(n.left, actL, ipsL)
	} else {
		b.visit(n.left, actL, ipsL)
		b.visit(n.right, actR, ipsR)
	}
	scr.Release(mark)
}

// scanLeaf verifies the leaf's contiguous rows for every active query with
// one multi-query kernel call over widened (conversion-free) operands;
// per-query results follow from the row-major distance block.
func (b *batchSearcher) scanLeaf(n *nodeRec, act []int32) {
	if b.quant {
		b.scanLeafQuant(n, act)
		return
	}
	t := b.tree
	m := int(n.count())
	if m == 0 {
		return
	}
	start := int(n.start)
	d := t.points.D
	rows := t.points.Data[start*d : (start+m)*d]
	nact := len(act)
	limits := b.scr.Prefix(nact)
	for j := range limits {
		limits[j] = int32(m) // Ball-Tree has no point-level bounds: full leaf
	}
	dists := b.scr.Dists(m * nact)
	vec.DotBlockMultiIdx(b.scr.Q64, d, act, limits, rows, b.scr.Row64(d), dists)
	for j, qi := range act {
		st := &b.stats[qi]
		st.LeavesVisited++
		st.IPCount += int64(m)
		st.Candidates += int64(m)
		tk := &b.scr.Heaps[qi]
		for r := 0; r < m; r++ {
			tk.Push(t.ids[start+r], math.Abs(dists[r*nact+j]))
		}
	}
}

// scanLeafQuant is the batched quantized leaf scan. Unlike the float path's
// shared multi-query kernel, each active query filters the (4x smaller,
// cache-resident) code block independently and verifies only its own
// survivors — the filter typically removes most rows, so sharing the float
// row stream would widen rows no survivor needs. Queries whose heap is not
// yet full fall back to this query's dense float scan, exactly like the
// single-query path. Verified distances go through the same float kernels,
// so batched results stay bitwise identical to per-query Search.
func (b *batchSearcher) scanLeafQuant(n *nodeRec, act []int32) {
	t := b.tree
	m := int(n.count())
	if m == 0 {
		return
	}
	start := int(n.start)
	d := t.points.D
	rows := t.points.Data[start*d : (start+m)*d]
	codes := t.codes[start*d : (start+m)*d]
	for _, qi := range act {
		st := &b.stats[qi]
		st.LeavesVisited++
		tk := &b.scr.Heaps[qi]
		q := b.queries.Row(int(qi))
		if !tk.Full() {
			dists := b.scr.Dists(m)
			vec.DotBlock(q, rows, dists)
			st.IPCount += int64(m)
			st.Candidates += int64(m)
			for r := 0; r < m; r++ {
				tk.Push(t.ids[start+r], math.Abs(dists[r]))
			}
			continue
		}
		w, base, invS, eps := b.scr.QuantFilter(int(qi), d)
		sel := vec.CodeSelect(codes, d, w, base, invS, eps, tk.Lambda(), b.scr.Sel(m))
		st.PrunedPoints += int64(m - len(sel))
		st.IPCount += int64(len(sel))
		st.Candidates += int64(len(sel))
		if len(sel) == m {
			dists := b.scr.Dists(m)
			vec.DotBlock(q, rows, dists)
			for r := 0; r < m; r++ {
				tk.Push(t.ids[start+r], math.Abs(dists[r]))
			}
		} else {
			for _, r := range sel {
				pos := start + int(r)
				tk.Push(t.ids[pos], math.Abs(vec.Dot(q, t.points.Row(pos))))
			}
		}
	}
}
