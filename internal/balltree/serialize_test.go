package balltree

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"p2h/internal/binio"
	"p2h/internal/core"
	"p2h/internal/dataset"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 14, Clusters: 6}, 700, 1)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 10, 2)
	orig := Build(data, Config{LeafSize: 30, Seed: 3})

	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.N() != orig.N() || restored.Dim() != orig.Dim() ||
		restored.Nodes() != orig.Nodes() || restored.Leaves() != orig.Leaves() ||
		restored.LeafSize() != orig.LeafSize() {
		t.Fatalf("metadata mismatch: %s vs %s", restored, orig)
	}
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		a, sa := orig.Search(q, core.SearchOptions{K: 7})
		b, sb := restored.Search(q, core.SearchOptions{K: 7})
		if len(a) != len(b) {
			t.Fatalf("query %d: result counts differ", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("query %d rank %d: %v != %v", i, j, a[j], b[j])
			}
		}
		if sa != sb {
			t.Fatalf("query %d: stats differ: %+v != %+v", i, sa, sb)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyUniform, RawDim: 6}, 100, 4)
	data := raw.AppendOnes()
	orig := Build(data, Config{LeafSize: 10, Seed: 5})
	path := filepath.Join(t.TempDir(), "tree.p2hbt")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Nodes() != orig.Nodes() {
		t.Fatalf("nodes %d != %d", restored.Nodes(), orig.Nodes())
	}
}

func TestLoadRejectsCorruptInput(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyUniform, RawDim: 5}, 80, 6)
	data := raw.AppendOnes()
	orig := Build(data, Config{LeafSize: 10, Seed: 7})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":       {},
		"bad magic":   append([]byte("XXXXXXXX"), good[8:]...),
		"truncated":   good[:len(good)/2],
		"short magic": good[:4],
	}
	for name, payload := range cases {
		if _, err := Load(bytes.NewReader(payload)); !errors.Is(err, binio.ErrCorrupt) {
			t.Fatalf("%s: want ErrCorrupt, got %v", name, err)
		}
	}

	// Flip the node-count header field (offset: 8 magic + 4 leafSize + 4 n + 4 d).
	bad := append([]byte(nil), good...)
	bad[8+12] = 0xFF
	bad[8+13] = 0xFF
	if _, err := Load(bytes.NewReader(bad)); !errors.Is(err, binio.ErrCorrupt) {
		t.Fatalf("corrupt node count: want ErrCorrupt, got %v", err)
	}
}
