package balltree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"p2h/internal/core"
	"p2h/internal/dataset"
	"p2h/internal/linearscan"
	"p2h/internal/vec"
)

const distTol = 1e-9

// sameDists checks two result lists agree on distances (ids may differ under
// exact ties).
func sameDists(a, b []core.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		d := math.Abs(a[i].Dist - b[i].Dist)
		scale := math.Max(1, math.Max(a[i].Dist, b[i].Dist))
		if d > distTol*scale {
			return false
		}
	}
	return true
}

func TestSearchExactMatchesLinearScan(t *testing.T) {
	for _, family := range []dataset.Family{dataset.FamilyClustered, dataset.FamilyUniform, dataset.FamilyHeavyTail, dataset.FamilyLowRank, dataset.FamilySparse} {
		raw := dataset.Generate(dataset.Spec{Name: "t", Family: family, RawDim: 20, Clusters: 8}, 600, 1)
		raw = dataset.Dedup(raw)
		data := raw.AppendOnes()
		queries := dataset.GenerateQueries(raw, 15, 2)
		tree := Build(data, Config{LeafSize: 25, Seed: 3})
		scan := linearscan.New(data)
		for k := range []int{1, 5, 10} {
			kk := []int{1, 5, 10}[k]
			for i := 0; i < queries.N; i++ {
				q := queries.Row(i)
				got, _ := tree.Search(q, core.SearchOptions{K: kk})
				want, _ := scan.Search(q, core.SearchOptions{K: kk})
				if !sameDists(got, want) {
					t.Fatalf("%v k=%d query %d: tree=%v scan=%v", family, kk, i, got, want)
				}
			}
		}
	}
}

func TestSearchLowerBoundPreferenceAlsoExact(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 16, Clusters: 6}, 400, 5)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 10, 6)
	tree := Build(data, Config{LeafSize: 20, Seed: 7})
	scan := linearscan.New(data)
	for i := 0; i < queries.N; i++ {
		q := queries.Row(i)
		got, _ := tree.Search(q, core.SearchOptions{K: 3, Preference: core.PrefLowerBound})
		want, _ := scan.Search(q, core.SearchOptions{K: 3})
		if !sameDists(got, want) {
			t.Fatalf("query %d: lb-pref tree=%v scan=%v", i, got, want)
		}
	}
}

func TestSearchPrunesNodes(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 12, Clusters: 16}, 4000, 8)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 5, 9)
	tree := Build(data, Config{LeafSize: 50, Seed: 1})
	var st core.Stats
	for i := 0; i < queries.N; i++ {
		_, s := tree.Search(queries.Row(i), core.SearchOptions{K: 1})
		st.Add(s)
	}
	if st.Candidates >= int64(queries.N)*int64(data.N) {
		t.Fatal("no pruning happened at all")
	}
	if st.PrunedNodes == 0 {
		t.Fatal("expected pruned subtrees on clustered data")
	}
	// Pruning must beat the exhaustive scan by a wide margin on clustered data.
	if float64(st.Candidates) > 0.8*float64(int64(queries.N)*int64(data.N)) {
		t.Fatalf("pruning too weak: %d candidates of %d", st.Candidates, int64(queries.N)*int64(data.N))
	}
}

func TestSearchBudgetRespected(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyUniform, RawDim: 10}, 1000, 10)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 5, 11)
	tree := Build(data, Config{LeafSize: 40, Seed: 2})
	for _, budget := range []int{1, 10, 100, 999} {
		for i := 0; i < queries.N; i++ {
			res, st := tree.Search(queries.Row(i), core.SearchOptions{K: 5, Budget: budget})
			if st.Candidates > int64(budget) {
				t.Fatalf("budget %d exceeded: %d", budget, st.Candidates)
			}
			if len(res) == 0 {
				t.Fatal("budgeted search must still return something")
			}
		}
	}
}

func TestSearchBudgetRecallImproves(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 16, Clusters: 8}, 3000, 12)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 20, 13)
	tree := Build(data, Config{LeafSize: 50, Seed: 3})
	gt := linearscan.GroundTruth(data, queries, 10)
	recallAt := func(budget int) float64 {
		hit, total := 0, 0
		for i := 0; i < queries.N; i++ {
			res, _ := tree.Search(queries.Row(i), core.SearchOptions{K: 10, Budget: budget})
			hit += overlap(res, gt[i])
			total += len(gt[i])
		}
		return float64(hit) / float64(total)
	}
	low := recallAt(30)
	high := recallAt(3000)
	if high < low-0.01 {
		t.Fatalf("recall must not degrade with budget: %.3f -> %.3f", low, high)
	}
	if high < 0.95 {
		t.Fatalf("large budget recall too low: %.3f", high)
	}
}

func overlap(res, gt []core.Result) int {
	// count returned ids whose distance is within the gt k-th distance
	// (ties counted as hits, the standard recall convention).
	if len(gt) == 0 {
		return 0
	}
	kth := gt[len(gt)-1].Dist
	hits := 0
	for _, r := range res {
		if r.Dist <= kth*(1+1e-9)+1e-12 {
			hits++
		}
	}
	if hits > len(gt) {
		hits = len(gt)
	}
	return hits
}

func TestSearchKLargerThanN(t *testing.T) {
	data := vec.FromRows([][]float32{{0}, {1}, {2}}).AppendOnes()
	tree := Build(data, Config{LeafSize: 2, Seed: 1})
	res, _ := tree.Search([]float32{1, -1}, core.SearchOptions{K: 10})
	if len(res) != 3 {
		t.Fatalf("k>n should return all %d points, got %d", 3, len(res))
	}
}

func TestSearchProfileRecordsPhases(t *testing.T) {
	raw := dataset.Generate(dataset.Spec{Name: "t", Family: dataset.FamilyClustered, RawDim: 12, Clusters: 4}, 800, 14)
	data := raw.AppendOnes()
	queries := dataset.GenerateQueries(raw, 3, 15)
	tree := Build(data, Config{LeafSize: 30, Seed: 4})
	prof := &core.Profile{}
	for i := 0; i < queries.N; i++ {
		tree.Search(queries.Row(i), core.SearchOptions{K: 5, Profile: prof})
	}
	if prof.Get(core.PhaseVerify) <= 0 {
		t.Fatal("profile must record verification time")
	}
	if prof.Get(core.PhaseBound) <= 0 {
		t.Fatal("profile must record bound time")
	}
}

// Property: the node-level ball bound never exceeds the true minimum
// |<x,q>| within the node (Theorem 2 soundness).
func TestQuickNodeBallBoundSound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(150) + 20
		d := rng.Intn(12) + 2
		raw := dataset.Generate(dataset.Spec{Name: "q", Family: dataset.FamilyClustered, RawDim: d, Clusters: 4}, n, seed)
		data := raw.AppendOnes()
		queries := dataset.GenerateQueries(raw, 3, seed+1)
		tree := Build(data, Config{LeafSize: 10, Seed: seed})
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			qnorm := vec.Norm(q)
			ok := true
			var walk func(ni int32)
			walk = func(ni int32) {
				nd := &tree.nodes[ni]
				lb := math.Abs(vec.Dot(q, tree.center(ni))) - qnorm*nd.radius
				if lb < 0 {
					lb = 0
				}
				trueMin := math.Inf(1)
				for pos := nd.start; pos < nd.end; pos++ {
					v := math.Abs(vec.Dot(q, tree.points.Row(int(pos))))
					if v < trueMin {
						trueMin = v
					}
				}
				if lb > trueMin*(1+1e-9)+1e-9 {
					ok = false
				}
				if !nd.isLeaf() {
					walk(nd.left)
					walk(nd.right)
				}
			}
			walk(0)
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: exact search result is invariant to leaf size and preference.
func TestQuickExactInvariantToParams(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(300) + 50
		raw := dataset.Generate(dataset.Spec{Name: "q", Family: dataset.FamilyUniform, RawDim: 8}, n, seed)
		data := raw.AppendOnes()
		queries := dataset.GenerateQueries(raw, 2, seed+1)
		ref := linearscan.New(data)
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			want, _ := ref.Search(q, core.SearchOptions{K: 4})
			for _, leaf := range []int{5, 37, 1000} {
				tree := Build(data, Config{LeafSize: leaf, Seed: seed})
				for _, pref := range []core.Preference{core.PrefCenter, core.PrefLowerBound} {
					got, _ := tree.Search(q, core.SearchOptions{K: 4, Preference: pref})
					if !sameDists(got, want) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
