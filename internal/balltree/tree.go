// Package balltree implements the paper's Section III: the classical
// Ball-Tree index revisited for point-to-hyperplane nearest neighbor search
// with a novel node-level ball bound (Theorem 2) and a branch-and-bound
// search scheme (Algorithm 3).
//
// The tree indexes lifted data points x = (p; 1). Each node covers a
// contiguous range of a reordered copy of the data, so leaf verification is
// a sequential scan, matching the paper's storage layout discussion.
//
// Storage is a flat arena: all nodes live in one []nodeRec slice with
// children addressed by index, all node centers are packed into one
// contiguous centers matrix (row i = center of node i), and each leaf's
// points occupy a contiguous row-major block of the reordered data. A
// visited node therefore costs no pointer chasing, and leaf verification is
// one blocked kernel call over sequential memory (vec.DotBlock).
package balltree

import (
	"fmt"

	"p2h/internal/attr"
	"p2h/internal/exec"
	"p2h/internal/quant"
	"p2h/internal/vec"
)

// DefaultLeafSize is the paper's default maximum leaf size N0.
const DefaultLeafSize = 100

// radiusSlack inflates stored radii by a relative epsilon so that pruning
// stays conservative under floating-point rounding.
const radiusSlack = 1e-9

// noChild marks a leaf's child slots in the flat arena.
const noChild = int32(-1)

// Config parameterizes tree construction.
type Config struct {
	// LeafSize is the maximum number of points per leaf (the paper's N0).
	// Zero selects DefaultLeafSize.
	LeafSize int
	// Seed drives the random pivot choice of the seed-grow split
	// (Algorithm 2); builds are deterministic given a seed.
	Seed int64
	// Quantize stores an 8-bit quantized mirror of the reordered points and
	// filters leaf rows through its exact error bound before float
	// verification. Results are unchanged (the filter is conservative);
	// exact unfiltered searches get cheaper leaf scans for +25% memory.
	Quantize bool
}

func (c Config) normalized() Config {
	if c.LeafSize <= 0 {
		c.LeafSize = DefaultLeafSize
	}
	return c
}

// nodeRec is one ball of the tree in the flat arena. Leaf nodes have
// left == right == noChild and cover positions [start, end) of the reordered
// point storage. The node's center is row i of the tree's centers matrix,
// where i is the node's arena index. Children always sit at larger arena
// indices than their parent (preorder construction).
type nodeRec struct {
	radius      float64
	start, end  int32
	left, right int32 // arena indices of children, noChild for leaves
}

func (n *nodeRec) count() int32 { return n.end - n.start }
func (n *nodeRec) isLeaf() bool { return n.left == noChild }

// Tree is a Ball-Tree over lifted data points.
type Tree struct {
	points   *vec.Matrix // reordered copy: leaf ranges are contiguous rows
	ids      []int32     // position -> original data id
	nodes    []nodeRec   // flat arena, root at index 0, preorder
	centers  *vec.Matrix // nodes x d: packed node centers
	leafSize int
	leaves   int

	// Quantized mirror (Config.Quantize): codes is the 8-bit encoding of the
	// reordered points, position-aligned so a leaf's code block sits at
	// [start*d, end*d) like its float block. Both are nil when quantization
	// is off.
	qz    *quant.Quantizer
	codes []uint8

	// Attribute store and its per-node summaries (AttachAttrs): attrs rows
	// are original data ids, so predicate evaluation speaks the same id
	// space as results; attrSums lets visit() skip subtrees a predicate
	// provably cannot match. Both nil when no attributes are attached.
	attrs    *attr.Store
	attrSums *attr.Summaries

	// Free lists of the execution-engine state (internal/exec): Search and
	// SearchBatch recycle their scratch through these, so steady-state
	// queries allocate nothing.
	searchers exec.Pool[Searcher]
	batchers  exec.Pool[batchSearcher]
}

// center returns node ni's center, a row of the packed centers matrix.
func (t *Tree) center(ni int32) []float32 { return t.centers.Row(int(ni)) }

// N returns the number of indexed points.
func (t *Tree) N() int { return t.points.N }

// Dim returns the lifted dimensionality.
func (t *Tree) Dim() int { return t.points.D }

// LeafSize returns the configured maximum leaf size N0.
func (t *Tree) LeafSize() int { return t.leafSize }

// Nodes returns the total number of tree nodes (internal + leaf).
func (t *Tree) Nodes() int { return len(t.nodes) }

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return t.leaves }

// Height returns the height of the tree (a single leaf tree has height 1).
func (t *Tree) Height() int { return t.height(0) }

func (t *Tree) height(ni int32) int {
	n := &t.nodes[ni]
	if n.isLeaf() {
		return 1
	}
	hl, hr := t.height(n.left), t.height(n.right)
	if hl > hr {
		return hl + 1
	}
	return hr + 1
}

// Quantized reports whether the tree carries the 8-bit leaf mirror.
func (t *Tree) Quantized() bool { return t.qz != nil }

// AttachAttrs binds a per-point attribute store (row i = data id i) to the
// tree and builds the per-node summaries predicate pushdown skips subtrees
// with. Summaries are derived state: cheap to rebuild, never serialized.
// Passing nil detaches. The caller must not mutate the store afterwards.
func (t *Tree) AttachAttrs(st *attr.Store) error {
	if st == nil {
		t.attrs, t.attrSums = nil, nil
		return nil
	}
	if st.N() != t.points.N {
		return fmt.Errorf("balltree: attribute store covers %d rows, index holds %d", st.N(), t.points.N)
	}
	infos := make([]attr.NodeInfo, len(t.nodes))
	for i := range t.nodes {
		n := &t.nodes[i]
		infos[i] = attr.NodeInfo{Start: n.start, End: n.end, Left: n.left, Right: n.right}
	}
	t.attrs = st
	t.attrSums = attr.BuildSummaries(st, t.ids, infos)
	return nil
}

// Attrs returns the attached attribute store, nil when none.
func (t *Tree) Attrs() *attr.Store { return t.attrs }

// IndexBytes estimates the memory footprint of the index structure itself:
// the packed centers matrix, the node records (radius, range, child indices),
// the position->id map, and the quantized mirror when present. The reordered
// copy of the data is reported separately by DataBytes, mirroring how the
// paper's Table III separates index size from data size.
func (t *Tree) IndexBytes() int64 {
	const perNode = 8 /*radius*/ + 2*4 /*range*/ + 2*4 /*children*/
	b := t.centers.Bytes() + int64(len(t.nodes))*perNode + int64(len(t.ids))*4
	if t.qz != nil {
		b += int64(len(t.codes)) + int64(t.points.D)*(4+4+8)
	}
	if t.attrs != nil {
		b += t.attrs.MemBytes() + t.attrSums.MemBytes()
	}
	return b
}

// DataBytes returns the size of the reordered data copy.
func (t *Tree) DataBytes() int64 { return t.points.Bytes() }

// String summarizes the tree for logs.
func (t *Tree) String() string {
	return fmt.Sprintf("balltree{n=%d d=%d leafsize=%d nodes=%d leaves=%d height=%d}",
		t.N(), t.Dim(), t.leafSize, t.Nodes(), t.leaves, t.Height())
}
