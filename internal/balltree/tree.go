// Package balltree implements the paper's Section III: the classical
// Ball-Tree index revisited for point-to-hyperplane nearest neighbor search
// with a novel node-level ball bound (Theorem 2) and a branch-and-bound
// search scheme (Algorithm 3).
//
// The tree indexes lifted data points x = (p; 1). Each node covers a
// contiguous range of a reordered copy of the data, so leaf verification is
// a sequential scan, matching the paper's storage layout discussion.
package balltree

import (
	"fmt"

	"p2h/internal/vec"
)

// DefaultLeafSize is the paper's default maximum leaf size N0.
const DefaultLeafSize = 100

// radiusSlack inflates stored radii by a relative epsilon so that pruning
// stays conservative under floating-point rounding.
const radiusSlack = 1e-9

// Config parameterizes tree construction.
type Config struct {
	// LeafSize is the maximum number of points per leaf (the paper's N0).
	// Zero selects DefaultLeafSize.
	LeafSize int
	// Seed drives the random pivot choice of the seed-grow split
	// (Algorithm 2); builds are deterministic given a seed.
	Seed int64
}

func (c Config) normalized() Config {
	if c.LeafSize <= 0 {
		c.LeafSize = DefaultLeafSize
	}
	return c
}

// node is one ball of the tree. Leaf nodes have nil children and cover
// positions [start, end) of the reordered point storage.
type node struct {
	center      []float32
	radius      float64
	start, end  int32
	left, right *node
}

func (n *node) count() int32 { return n.end - n.start }
func (n *node) isLeaf() bool { return n.left == nil }

// Tree is a Ball-Tree over lifted data points.
type Tree struct {
	points   *vec.Matrix // reordered copy: leaf ranges are contiguous rows
	ids      []int32     // position -> original data id
	root     *node
	leafSize int
	nodes    int // total node count
	leaves   int
}

// N returns the number of indexed points.
func (t *Tree) N() int { return t.points.N }

// Dim returns the lifted dimensionality.
func (t *Tree) Dim() int { return t.points.D }

// LeafSize returns the configured maximum leaf size N0.
func (t *Tree) LeafSize() int { return t.leafSize }

// Nodes returns the total number of tree nodes (internal + leaf).
func (t *Tree) Nodes() int { return t.nodes }

// Leaves returns the number of leaf nodes.
func (t *Tree) Leaves() int { return t.leaves }

// Height returns the height of the tree (a single leaf tree has height 1).
func (t *Tree) Height() int { return height(t.root) }

func height(n *node) int {
	if n == nil {
		return 0
	}
	if n.isLeaf() {
		return 1
	}
	hl, hr := height(n.left), height(n.right)
	if hl > hr {
		return hl + 1
	}
	return hr + 1
}

// IndexBytes estimates the memory footprint of the index structure itself:
// node centers, radii, child pointers, and the position->id map. The
// reordered copy of the data is reported separately by DataBytes, mirroring
// how the paper's Table III separates index size from data size.
func (t *Tree) IndexBytes() int64 {
	perNode := int64(t.points.D)*4 + 8 /*radius*/ + 2*8 /*children*/ + 2*4 /*range*/
	return int64(t.nodes)*perNode + int64(len(t.ids))*4
}

// DataBytes returns the size of the reordered data copy.
func (t *Tree) DataBytes() int64 { return t.points.Bytes() }

// String summarizes the tree for logs.
func (t *Tree) String() string {
	return fmt.Sprintf("balltree{n=%d d=%d leafsize=%d nodes=%d leaves=%d height=%d}",
		t.N(), t.Dim(), t.leafSize, t.nodes, t.leaves, t.Height())
}
