package p2h

import (
	"reflect"
	"testing"
)

// TestSearchBatchProfileParallelIsRaceFree is the regression test for the
// shared-Profile data race in SearchBatch's per-query fallback: all workers
// used to write the same Profile pointer concurrently. Under `go test
// -race` this test fails on a reintroduction; it also pins the documented
// semantics — on parallel paths the Profile is ignored, matching
// Sharded.Search.
func TestSearchBatchProfileParallelIsRaceFree(t *testing.T) {
	data := specTestData(400, 6, 1)
	queries := GenerateQueries(data, 32, 2)

	// KDTree has no native batch surface, so this exercises the per-query
	// worker fallback that raced.
	ix := NewKDTree(data, KDTreeOptions{LeafSize: 25})
	var prof Profile
	opts := SearchOptions{K: 5, Profile: &prof}
	got := SearchBatch(ix, queries, opts, 4)

	want := SearchBatch(ix, queries, SearchOptions{K: 5}, 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("profiled parallel batch diverges from unprofiled batch")
	}
	if prof != (Profile{}) {
		t.Fatalf("parallel SearchBatch wrote the Profile, want it ignored: %+v", prof)
	}

	// The batched-index parallel path must be race-free too.
	bc := NewBCTree(data, BCTreeOptions{LeafSize: 25, Seed: 3})
	var prof2 Profile
	gotBC := SearchBatch(bc, queries, SearchOptions{K: 5, Profile: &prof2}, 4)
	wantBC := SearchBatch(bc, queries, SearchOptions{K: 5}, 1)
	if !reflect.DeepEqual(gotBC, wantBC) {
		t.Fatal("profiled parallel batch diverges on the batched path")
	}

	// With one worker on a non-batched index the batch runs sequentially,
	// so profiling still works there.
	var seq Profile
	SearchBatch(ix, queries, SearchOptions{K: 5, Profile: &seq}, 1)
	if seq == (Profile{}) {
		t.Fatal("sequential SearchBatch did not record a profile")
	}
}
