// Quickstart: declare a BC-Tree with a p2h.Spec, build it over a synthetic
// data set with p2h.New, run one exact hyperplane query and one budgeted
// (approximate) query, check the results against the exhaustive scan, and
// round-trip the index through the self-describing container format
// (p2h.SaveFile / p2h.Open).
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	p2h "p2h"
)

func main() {
	// 10k SIFT-like descriptors (128 dimensions), deduplicated as the
	// paper's preprocessing does.
	data := p2h.Dedup(p2h.GenerateDataset("Sift", 10000, 1))
	fmt.Printf("data: %d points, %d dimensions\n", data.N, data.D)

	// One declarative entry point builds any index kind; swap "bctree" for
	// any name in p2h.Kinds() to change backends without new code.
	start := time.Now()
	index, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBCTree, LeafSize: 100, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s built in %v (%d index bytes)\n",
		p2h.KindOf(index), time.Since(start).Round(time.Millisecond), index.IndexBytes())

	// One random hyperplane query through the data bulk. A query is the
	// hyperplane's unit normal plus its offset; build your own with
	// p2h.Hyperplane(normal, offset).
	queries := p2h.GenerateQueries(data, 1, 2)
	q := queries.Row(0)

	// Exact top-10: the default (no budget) is exact.
	start = time.Now()
	exact, stats := index.Search(q, p2h.SearchOptions{K: 10})
	exactTime := time.Since(start)
	fmt.Printf("\nexact top-10 (%v, %d of %d points verified):\n", exactTime.Round(time.Microsecond), stats.Candidates, data.N)
	for i, r := range exact {
		fmt.Printf("  %2d. point %5d at distance %.6f\n", i+1, r.ID, r.Dist)
	}

	// The same query with a 1% candidate budget: faster, approximate.
	start = time.Now()
	approx, stats := index.Search(q, p2h.SearchOptions{K: 10, Budget: data.N / 100})
	approxTime := time.Since(start)
	fmt.Printf("\n1%%-budget top-10 (%v, %d points verified): recall %.0f%%\n",
		approxTime.Round(time.Microsecond), stats.Candidates, 100*p2h.Recall(approx, exact))

	// Sanity: the exhaustive scan agrees with the exact tree search.
	scan, err := p2h.New(data, p2h.Spec{Kind: p2h.KindLinearScan})
	if err != nil {
		log.Fatal(err)
	}
	want, _ := scan.Search(q, p2h.SearchOptions{K: 10})
	for i := range want {
		if exact[i].ID != want[i].ID {
			log.Fatalf("mismatch at rank %d: tree %v vs scan %v", i, exact[i], want[i])
		}
	}
	fmt.Println("\nexact results verified against the exhaustive scan ✓")

	// Persistence: the container records its own kind, so loading needs no
	// type information — p2h.Open works on any persistable index kind.
	dir, err := os.MkdirTemp("", "p2h-quickstart")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "index.p2h")
	if err := p2h.SaveFile(path, index); err != nil {
		log.Fatal(err)
	}
	loaded, err := p2h.Open(path)
	if err != nil {
		log.Fatal(err)
	}
	restored, _ := loaded.Search(q, p2h.SearchOptions{K: 10})
	for i := range exact {
		if restored[i] != exact[i] {
			log.Fatalf("saved/loaded mismatch at rank %d", i)
		}
	}
	fmt.Printf("index round-tripped through %s as kind %q ✓\n", filepath.Base(path), p2h.KindOf(loaded))
}
