// Quickstart: build a BC-Tree over a synthetic data set, run one exact
// hyperplane query and one budgeted (approximate) query, and check the
// results against the exhaustive scan.
package main

import (
	"fmt"
	"log"
	"time"

	p2h "p2h"
)

func main() {
	// 10k SIFT-like descriptors (128 dimensions), deduplicated as the
	// paper's preprocessing does.
	data := p2h.Dedup(p2h.GenerateDataset("Sift", 10000, 1))
	fmt.Printf("data: %d points, %d dimensions\n", data.N, data.D)

	start := time.Now()
	index := p2h.NewBCTree(data, p2h.BCTreeOptions{LeafSize: 100, Seed: 1})
	fmt.Printf("BC-Tree built in %v (%d index bytes)\n",
		time.Since(start).Round(time.Millisecond), index.IndexBytes())

	// One random hyperplane query through the data bulk. A query is the
	// hyperplane's unit normal plus its offset; build your own with
	// p2h.Hyperplane(normal, offset).
	queries := p2h.GenerateQueries(data, 1, 2)
	q := queries.Row(0)

	// Exact top-10: the default (no budget) is exact.
	start = time.Now()
	exact, stats := index.Search(q, p2h.SearchOptions{K: 10})
	exactTime := time.Since(start)
	fmt.Printf("\nexact top-10 (%v, %d of %d points verified):\n", exactTime.Round(time.Microsecond), stats.Candidates, data.N)
	for i, r := range exact {
		fmt.Printf("  %2d. point %5d at distance %.6f\n", i+1, r.ID, r.Dist)
	}

	// The same query with a 1% candidate budget: faster, approximate.
	start = time.Now()
	approx, stats := index.Search(q, p2h.SearchOptions{K: 10, Budget: data.N / 100})
	approxTime := time.Since(start)
	fmt.Printf("\n1%%-budget top-10 (%v, %d points verified): recall %.0f%%\n",
		approxTime.Round(time.Microsecond), stats.Candidates, 100*p2h.Recall(approx, exact))

	// Sanity: the exhaustive scan agrees with the exact tree search.
	scan := p2h.NewLinearScan(data)
	want, _ := scan.Search(q, p2h.SearchOptions{K: 10})
	for i := range want {
		if exact[i].ID != want[i].ID {
			log.Fatalf("mismatch at rank %d: tree %v vs scan %v", i, exact[i], want[i])
		}
	}
	fmt.Println("\nexact results verified against the exhaustive scan ✓")
}
