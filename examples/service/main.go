// Service: stand up the p2hd HTTP layer in-process — two named indexes of
// different kinds behind one handler — and drive it as a network client:
// search an immutable BC-Tree, insert into a dynamic index and watch the
// answer change, snapshot it atomically, hot-swap the index from its own
// snapshot without dropping the service, and scrape the Prometheus metrics.
// Everything here is exactly what `cmd/p2hd` does behind a config file.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"

	p2h "p2h"
	"p2h/internal/httpapi"
)

func main() {
	dir, err := os.MkdirTemp("", "p2h-service-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A small synthetic data set, shared by both indexes.
	data := p2h.Dedup(p2h.GenerateDataset("Music", 5000, 1))
	dataPath := filepath.Join(dir, "data.fvecs")
	if err := p2h.SaveFvecs(dataPath, data); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data: %d points, %d dimensions\n", data.N, data.D)

	// The manager holds named serving engines; the handler exposes them.
	// cmd/p2hd wires the same two calls behind flags and a config file.
	mgr := httpapi.NewManager(p2h.ServerOptions{Workers: 4}, 0)
	mustLoad(mgr, "trees", httpapi.IndexConfig{
		Spec: &p2h.Spec{Kind: p2h.KindBCTree, LeafSize: 100, Seed: 1}, Data: dataPath,
	})
	mustLoad(mgr, "live", httpapi.IndexConfig{
		Spec: &p2h.Spec{Kind: p2h.KindDynamic, LeafSize: 100, Seed: 1}, Data: dataPath,
	})
	ts := httptest.NewServer(httpapi.NewHandler(mgr))
	defer ts.Close()
	fmt.Printf("serving 2 indexes at %s\n\n", ts.URL)

	// A hyperplane query against the immutable index.
	queries := p2h.GenerateQueries(data, 1, 2)
	q := queries.Row(0)
	var sr httpapi.SearchResponse
	post(ts.URL+"/v1/indexes/trees/search", httpapi.SearchRequest{
		Query: q, SearchOptionsJSON: httpapi.SearchOptionsJSON{K: 3},
	}, &sr)
	fmt.Printf("trees top-3: %v (candidates: %d)\n", sr.Results, sr.Stats.Candidates)

	// Mutate the dynamic index over HTTP: a point sitting exactly on a
	// crafted hyperplane becomes the new nearest neighbor.
	p := make([]float32, data.D)
	p[0] = 123
	var ins httpapi.InsertResponse
	post(ts.URL+"/v1/indexes/live/insert", httpapi.InsertRequest{Point: p}, &ins)
	target := make([]float32, data.D+1)
	target[0], target[data.D] = 1, -123 // hyperplane x0 = 123
	post(ts.URL+"/v1/indexes/live/search", httpapi.SearchRequest{
		Query: target, SearchOptionsJSON: httpapi.SearchOptionsJSON{K: 1},
	}, &sr)
	fmt.Printf("live after insert: handle %d found at distance %.3f\n", ins.Handle, sr.Results[0].Dist)

	// Snapshot atomically, then hot-swap the serving index from the
	// snapshot — the name keeps serving throughout.
	snapPath := filepath.Join(dir, "live.p2h")
	var snap httpapi.SnapshotResponse
	post(ts.URL+"/v1/indexes/live/snapshot", httpapi.SnapshotRequest{Path: snapPath}, &snap)
	fmt.Printf("snapshot: %d bytes -> %s\n", snap.Bytes, filepath.Base(snap.Path))
	var reloaded httpapi.IndexInfoResponse
	post(ts.URL+"/v1/indexes/live", httpapi.LoadRequest{
		IndexConfig: httpapi.IndexConfig{Path: snapPath}, Replace: true,
	}, &reloaded)
	fmt.Printf("hot-swapped %q from its snapshot: %d points\n", reloaded.Name, reloaded.N)

	// The engines' counters surface as Prometheus metrics.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	for _, line := range bytes.Split(buf.Bytes(), []byte("\n")) {
		if bytes.HasPrefix(line, []byte("p2hd_index_queries_total")) {
			fmt.Printf("metrics: %s\n", line)
		}
	}
}

func mustLoad(mgr *httpapi.Manager, name string, cfg httpapi.IndexConfig) {
	if _, _, err := mgr.Load(name, cfg, false); err != nil {
		log.Fatal(err)
	}
}

// post sends one JSON request and decodes the reply, failing on any error.
func post(url string, body, out any) {
	b, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("%s: HTTP %d: %s", url, resp.StatusCode, buf.String())
	}
	if err := json.Unmarshal(buf.Bytes(), out); err != nil {
		log.Fatal(err)
	}
}
