// Streaming: a mutable P2HNNS workload — points arrive and expire while
// hyperplane queries keep coming, the pattern of online active learning
// where the unlabeled pool changes between rounds.
//
// The example drives p2h.NewDynamic (BC-Tree snapshot + delta buffer +
// tombstones with automatic rebuilds) through insert/delete/query waves,
// cross-checks every wave against a fresh exhaustive scan, and finishes with
// a concurrent batch of queries via p2h.SearchBatch on a sharded index.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	p2h "p2h"
)

const (
	dim       = 64
	initial   = 12000
	waves     = 5
	perWave   = 1500 // inserts and deletes per wave
	perQueryK = 5
)

func main() {
	rng := rand.New(rand.NewSource(21))
	data := p2h.Dedup(p2h.GenerateDataset("Cifar-10", initial, 1))
	fmt.Printf("initial pool: %d points, %d dims\n\n", data.N, data.D)

	// The declarative entry point returns the Index interface; the dynamic
	// kind's mutation surface comes from the concrete type.
	ix, err := p2h.New(data, p2h.Spec{Kind: p2h.KindDynamic, Seed: 1, RebuildFraction: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	index := ix.(*p2h.Dynamic)

	// Track live vectors for the reference scan (handle -> vector).
	live := make(map[int32][]float32, data.N)
	for i := 0; i < data.N; i++ {
		live[int32(i)] = data.Row(i)
	}

	newPoint := func() []float32 {
		// New arrivals near existing points: drift, not a new distribution.
		basis := data.Row(rng.Intn(data.N))
		p := make([]float32, data.D)
		for j := range p {
			p[j] = basis[j] + float32(rng.NormFloat64()*0.05)
		}
		return p
	}

	for wave := 1; wave <= waves; wave++ {
		start := time.Now()
		for i := 0; i < perWave; i++ {
			p := newPoint()
			h := index.Insert(p)
			live[h] = p
		}
		deleted := 0
		for h := range live {
			if deleted == perWave {
				break
			}
			if index.Delete(h) {
				delete(live, h)
				deleted++
			}
		}
		mutTime := time.Since(start)

		// One query against the mutated pool, checked exactly.
		queries := p2h.GenerateQueries(data, 1, int64(100+wave))
		q := queries.Row(0)
		start = time.Now()
		res, _ := index.Search(q, p2h.SearchOptions{K: perQueryK})
		queryTime := time.Since(start)

		best, bestID := 1e308, int32(-1)
		for h, p := range live {
			if d := p2h.Distance(p, q); d < best {
				best, bestID = d, h
			}
		}
		if res[0].ID != bestID && res[0].Dist > best*(1+1e-9)+1e-12 {
			log.Fatalf("wave %d: index top (%d, %v) vs reference (%d, %v)",
				wave, res[0].ID, res[0].Dist, bestID, best)
		}
		fmt.Printf("wave %d: +%d/-%d points in %v; live %d; top-%d query in %v (nearest dist %.6f) ✓\n",
			wave, perWave, deleted, mutTime.Round(time.Millisecond),
			index.N(), perQueryK, queryTime.Round(time.Microsecond), res[0].Dist)
	}

	// Finish with a concurrent batch on a sharded snapshot of the live set.
	rows := make([][]float32, 0, len(live))
	for _, p := range live {
		rows = append(rows, p)
	}
	snapshot := p2h.FromRows(rows)
	sharded, err := p2h.New(snapshot, p2h.Spec{Kind: p2h.KindSharded, Shards: 8, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	batch := p2h.GenerateQueries(snapshot, 200, 3)
	start := time.Now()
	results := p2h.SearchBatch(sharded, batch, p2h.SearchOptions{K: perQueryK}, 0)
	elapsed := time.Since(start)
	fmt.Printf("\nsharded batch: %d queries x top-%d over %d points in %v (%.3f ms/query)\n",
		batch.N, perQueryK, snapshot.N, elapsed.Round(time.Millisecond),
		elapsed.Seconds()*1000/float64(batch.N))
	_ = results
}
