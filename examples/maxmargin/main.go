// Maximum-margin hyperplane selection (the paper's clustering motivation,
// Section I): among candidate separating hyperplanes, pick the one whose
// minimum distance to the data — its margin — is largest.
//
// Evaluating one candidate is exactly a k=1 P2HNNS query, so a BC-Tree turns
// the candidate sweep from O(candidates * n) into O(candidates * search),
// and each search prunes most of the data. The example generates candidates
// as perturbed midplanes between random pairs of points, evaluates them all
// with both the BC-Tree and the exhaustive scan, and reports the winning
// hyperplane, its margin, and the work saved.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	p2h "p2h"
)

const (
	nPoints     = 20000
	nCandidates = 200
)

func main() {
	rng := rand.New(rand.NewSource(11))

	// Clustered descriptor data: the good maximum-margin splits pass
	// between clusters, and the ball bounds prune whole clusters on the
	// far side of each candidate hyperplane.
	data := p2h.Dedup(p2h.GenerateDataset("Sift", nPoints, 3))
	fmt.Printf("data: %d points, %d dims; %d candidate hyperplanes\n\n", data.N, data.D, nCandidates)

	index, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBCTree, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	scan, err := p2h.New(data, p2h.Spec{Kind: p2h.KindLinearScan})
	if err != nil {
		log.Fatal(err)
	}
	candidates := makeCandidates(rng, data, nCandidates)

	// Sweep all candidates with the tree.
	start := time.Now()
	bestMargin, bestIdx := -1.0, -1
	var treeCandidates int64
	for i, q := range candidates {
		res, st := index.Search(q, p2h.SearchOptions{K: 1})
		treeCandidates += st.Candidates
		if res[0].Dist > bestMargin {
			bestMargin, bestIdx = res[0].Dist, i
		}
	}
	treeTime := time.Since(start)

	// The same sweep with the exhaustive scan, as the reference.
	start = time.Now()
	wantMargin, wantIdx := -1.0, -1
	for i, q := range candidates {
		res, _ := scan.Search(q, p2h.SearchOptions{K: 1})
		if res[0].Dist > wantMargin {
			wantMargin, wantIdx = res[0].Dist, i
		}
	}
	scanTime := time.Since(start)

	if bestIdx != wantIdx || math.Abs(bestMargin-wantMargin) > 1e-9*(1+wantMargin) {
		fmt.Printf("WARNING: tree (%d, %.6f) and scan (%d, %.6f) disagree\n",
			bestIdx, bestMargin, wantIdx, wantMargin)
	}

	fmt.Printf("best hyperplane: candidate %d with margin %.6f\n", bestIdx, bestMargin)
	fmt.Printf("tree sweep: %v, verifying %.1f%% of the data per candidate\n",
		treeTime.Round(time.Millisecond),
		100*float64(treeCandidates)/float64(int64(nCandidates)*int64(data.N)))
	fmt.Printf("scan sweep: %v (exhaustive)\n", scanTime.Round(time.Millisecond))
	fmt.Printf("speedup: %.1fx\n", scanTime.Seconds()/treeTime.Seconds())
}

// makeCandidates builds hyperplanes that bisect random pairs of far-apart
// points: normal along the difference, passing through the midpoint, with a
// small random tilt — the classic seeding of max-margin clustering searches.
func makeCandidates(rng *rand.Rand, data *p2h.Matrix, count int) [][]float32 {
	out := make([][]float32, 0, count)
	d := data.D
	for len(out) < count {
		a := data.Row(rng.Intn(data.N))
		b := data.Row(rng.Intn(data.N))
		normal := make([]float32, d)
		var norm float64
		for j := 0; j < d; j++ {
			normal[j] = a[j] - b[j] + float32(rng.NormFloat64()*0.01)
			norm += float64(normal[j]) * float64(normal[j])
		}
		if norm < 1e-9 {
			continue // coincident pair
		}
		norm = math.Sqrt(norm)
		var offset float64
		for j := 0; j < d; j++ {
			normal[j] = float32(float64(normal[j]) / norm)
			offset -= float64(normal[j]) * float64(a[j]+b[j]) / 2
		}
		out = append(out, p2h.Hyperplane(normal, offset))
	}
	return out
}
