// Active learning with a linear SVM (the paper's first motivating
// application, Section I): pool-based active learning requests labels for
// the points with minimum margin — the points nearest the SVM's decision
// hyperplane — which is exactly a P2HNNS query.
//
// The example trains a linear SVM on a synthetic binary problem and compares
// two labeling strategies over the same budget:
//
//   - margin sampling: each round labels the unlabeled point closest to the
//     current decision hyperplane, found by a BC-Tree P2HNNS query;
//   - random sampling: each round labels a random unlabeled point.
//
// Margin sampling reaches higher test accuracy with the same number of
// labels, and the BC-Tree finds each min-margin point without scanning the
// pool.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	p2h "p2h"
)

const (
	dim        = 32
	poolSize   = 8000
	testSize   = 2000
	seedLabels = 8   // labels both strategies start with
	rounds     = 120 // labels added by each strategy
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// Hidden ground-truth hyperplane; points are labeled by its side, with
	// a thin margin band removed so the problem is cleanly separable.
	truth := randomUnit(rng, dim)
	pool, poolLabels := samplePoints(rng, truth, poolSize)
	test, testLabels := samplePoints(rng, truth, testSize)

	data := p2h.FromRows(pool)
	index, err := p2h.New(data, p2h.Spec{Kind: p2h.KindBCTree, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pool: %d points, %d dims; test: %d points\n\n", data.N, data.D, len(test))

	seed := rng.Perm(poolSize)[:seedLabels]
	margin := newLearner(pool, poolLabels, seed)
	random := newLearner(pool, poolLabels, seed)

	fmt.Printf("%8s  %18s  %18s\n", "labels", "margin-sampling acc", "random-sampling acc")
	for r := 0; r <= rounds; r++ {
		if r%20 == 0 {
			fmt.Printf("%8d  %18.4f  %18.4f\n",
				seedLabels+r, accuracy(margin.w, margin.b, test, testLabels),
				accuracy(random.w, random.b, test, testLabels))
		}
		if r == rounds {
			break
		}

		// Margin strategy: P2HNNS against the current decision hyperplane.
		q := p2h.Hyperplane(margin.w, margin.b)
		res, _ := index.Search(q, p2h.SearchOptions{K: 32})
		picked := -1
		for _, cand := range res {
			if !margin.labeled[cand.ID] {
				picked = int(cand.ID)
				break
			}
		}
		if picked < 0 { // all 32 nearest already labeled; widen exhaustively
			for id := range pool {
				if !margin.labeled[int32(id)] {
					picked = id
					break
				}
			}
		}
		margin.label(picked)

		// Random strategy: any unlabeled point.
		for {
			id := rng.Intn(poolSize)
			if !random.labeled[int32(id)] {
				random.label(id)
				break
			}
		}
	}

	fmt.Printf("\nwith %d labels: margin sampling %.4f vs random %.4f\n",
		seedLabels+rounds,
		accuracy(margin.w, margin.b, test, testLabels),
		accuracy(random.w, random.b, test, testLabels))
}

// learner is a linear SVM trained by hinge-loss SGD over its labeled set.
type learner struct {
	pool    [][]float32
	labels  []int
	labeled map[int32]bool
	ids     []int
	w       []float32
	b       float64
}

func newLearner(pool [][]float32, labels []int, seed []int) *learner {
	l := &learner{
		pool:    pool,
		labels:  labels,
		labeled: make(map[int32]bool, len(seed)),
		w:       make([]float32, len(pool[0])),
	}
	for _, id := range seed {
		l.labeled[int32(id)] = true
		l.ids = append(l.ids, id)
	}
	l.train()
	return l
}

func (l *learner) label(id int) {
	l.labeled[int32(id)] = true
	l.ids = append(l.ids, id)
	l.train()
}

// train runs pegasos-style hinge-loss SGD from scratch over the labeled set.
func (l *learner) train() {
	const (
		epochs = 60
		lambda = 1e-3
	)
	rng := rand.New(rand.NewSource(99))
	w := make([]float64, len(l.w))
	b := 0.0
	t := 0
	for e := 0; e < epochs; e++ {
		for _, idx := range rng.Perm(len(l.ids)) {
			t++
			id := l.ids[idx]
			y := float64(l.labels[id])
			x := l.pool[id]
			eta := 1 / (lambda * float64(t))
			score := b
			for j, v := range x {
				score += w[j] * float64(v)
			}
			for j := range w {
				w[j] *= 1 - eta*lambda
			}
			if y*score < 1 {
				for j, v := range x {
					w[j] += eta * y * float64(v)
				}
				b += eta * y * 0.1
			}
		}
	}
	for j := range w {
		l.w[j] = float32(w[j])
	}
	l.b = b
}

func accuracy(w []float32, b float64, points [][]float32, labels []int) float64 {
	correct := 0
	for i, x := range points {
		score := b
		for j, v := range x {
			score += float64(w[j]) * float64(v)
		}
		pred := 1
		if score < 0 {
			pred = -1
		}
		if pred == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(points))
}

func randomUnit(rng *rand.Rand, d int) []float32 {
	w := make([]float32, d)
	var norm float64
	for i := range w {
		w[i] = float32(rng.NormFloat64())
		norm += float64(w[i]) * float64(w[i])
	}
	norm = math.Sqrt(norm)
	for i := range w {
		w[i] = float32(float64(w[i]) / norm)
	}
	return w
}

// samplePoints draws Gaussian points and labels them by the hyperplane's
// side, rejecting points inside a thin margin band.
func samplePoints(rng *rand.Rand, truth []float32, n int) ([][]float32, []int) {
	points := make([][]float32, 0, n)
	labels := make([]int, 0, n)
	for len(points) < n {
		x := make([]float32, len(truth))
		var score float64
		for j := range x {
			x[j] = float32(rng.NormFloat64() * 2)
			score += float64(truth[j]) * float64(x[j])
		}
		if math.Abs(score) < 0.1 {
			continue // margin band
		}
		y := 1
		if score < 0 {
			y = -1
		}
		points = append(points, x)
		labels = append(labels, y)
	}
	return points, labels
}
