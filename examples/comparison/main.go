// Comparison: build all four of the paper's competitors — BC-Tree,
// Ball-Tree, NH, FH — over one data set through the public API, and print
// their indexing cost and their recall/time trade-off at a few candidate
// budgets. A miniature, single-data-set rendition of the paper's Table III
// and Figure 5; cmd/p2hbench runs the full versions.
package main

import (
	"fmt"
	"log"
	"time"

	p2h "p2h"
)

const (
	nPoints  = 20000
	nQueries = 30
	topK     = 10
)

func main() {
	data := p2h.Dedup(p2h.GenerateDataset("GloVe", nPoints, 1))
	queries := p2h.GenerateQueries(data, nQueries, 2)
	gt := p2h.GroundTruth(data, queries, topK)
	fmt.Printf("data: %d points, %d dims; %d queries, k=%d\n\n", data.N, data.D, queries.N, topK)

	// Every competitor is one declarative Spec through the same entry
	// point — the registry turns method comparison into a list of configs.
	type method struct {
		name string
		spec p2h.Spec
	}
	methods := []method{
		{"BC-Tree", p2h.Spec{Kind: p2h.KindBCTree, Seed: 1}},
		{"Ball-Tree", p2h.Spec{Kind: p2h.KindBallTree, Seed: 1}},
		{"FH", p2h.Spec{Kind: p2h.KindFH, M: 32, Seed: 1}},
		{"NH", p2h.Spec{Kind: p2h.KindNH, M: 32, Seed: 1}},
	}

	budgets := []int{data.N / 100, data.N / 20, data.N / 5, data.N}
	fmt.Printf("%-10s %12s %12s", "method", "build", "index MB")
	for _, b := range budgets {
		fmt.Printf("  %s", budgetLabel(b, data.N))
	}
	fmt.Println()

	for _, m := range methods {
		start := time.Now()
		ix, err := p2h.New(data, m.spec)
		if err != nil {
			log.Fatal(err)
		}
		buildTime := time.Since(start)
		fmt.Printf("%-10s %12v %12.1f", m.name, buildTime.Round(time.Millisecond),
			float64(ix.IndexBytes())/(1024*1024))
		for _, budget := range budgets {
			recall, ms := evaluate(ix, queries, gt, budget)
			fmt.Printf("  %5.1f%% %8.3fms", recall*100, ms)
		}
		fmt.Println()
	}
	fmt.Println("\ncolumns per budget: mean recall, mean query time")
}

func budgetLabel(budget, n int) string {
	return fmt.Sprintf("[budget %4.1f%%          ]", 100*float64(budget)/float64(n))
}

func evaluate(ix p2h.Index, queries *p2h.Matrix, gt [][]p2h.Result, budget int) (recall, ms float64) {
	start := time.Now()
	for i := 0; i < queries.N; i++ {
		res, _ := ix.Search(queries.Row(i), p2h.SearchOptions{K: topK, Budget: budget})
		recall += p2h.Recall(res, gt[i])
	}
	elapsed := time.Since(start)
	return recall / float64(queries.N), elapsed.Seconds() * 1000 / float64(queries.N)
}
