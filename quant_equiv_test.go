package p2h_test

// Byte-equality property tests for the quantized leaf filter at the public
// API boundary: for every quantizable kind and every option shape, the
// quantized index must return results bitwise identical to its unquantized
// twin — the filter is conservative and exact answers are canonical, so
// equality holds down to the float bits, not merely to recall. DESIGN.md's
// "Quantized leaf scan" section derives why.

import (
	"bytes"
	"testing"

	p2h "p2h"
)

// quantTwin builds the same kind twice over the same data, with and without
// the quantized mirror.
func quantTwin(t *testing.T, kind string, data *p2h.Matrix) (plain, quantized p2h.Index) {
	t.Helper()
	spec := p2h.Spec{Kind: kind, Seed: 7, LeafSize: 64}
	if kind == p2h.KindSharded {
		spec.Shards = 4
		spec.Workers = 1
	}
	plain, err := p2h.New(data, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Quantize = true
	quantized, err = p2h.New(data, spec)
	if err != nil {
		t.Fatal(err)
	}
	return plain, quantized
}

func requireIdentical(t *testing.T, label string, got, want []p2h.Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s rank %d: got %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestQuantizedEquivalence sweeps kinds x option shapes through the
// single-query path.
func TestQuantizedEquivalence(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Cifar-10", 1500, 11))
	queries := p2h.GenerateQueries(data, 25, 12)
	shapes := []struct {
		name string
		opts p2h.SearchOptions
	}{
		{"exact", p2h.SearchOptions{K: 10}},
		{"k1", p2h.SearchOptions{K: 1}},
		{"kBig", p2h.SearchOptions{K: data.N + 3}}, // k > n: the heap never fills
		{"budget", p2h.SearchOptions{K: 10, Budget: 120}},
		{"filtered", p2h.SearchOptions{K: 10, Filter: func(id int32) bool { return id%2 == 0 }}},
		{"ablated", p2h.SearchOptions{K: 10, DisableQuantFilter: true}},
	}
	for _, kind := range []string{p2h.KindBallTree, p2h.KindBCTree, p2h.KindSharded} {
		plain, quantized := quantTwin(t, kind, data)
		for _, shape := range shapes {
			t.Run(kind+"/"+shape.name, func(t *testing.T) {
				for qi := 0; qi < queries.N; qi++ {
					q := queries.Row(qi)
					want, _ := plain.Search(q, shape.opts)
					got, _ := quantized.Search(q, shape.opts)
					requireIdentical(t, shape.name, got, want)
				}
			})
		}
	}
}

// TestQuantizedEquivalenceBatched runs the same sweep through the batched
// execution engine.
func TestQuantizedEquivalenceBatched(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Cifar-10", 1500, 13))
	queries := p2h.GenerateQueries(data, 25, 14)
	for _, kind := range []string{p2h.KindBallTree, p2h.KindBCTree, p2h.KindSharded} {
		plain, quantized := quantTwin(t, kind, data)
		t.Run(kind, func(t *testing.T) {
			opts := p2h.SearchOptions{K: 10}
			want := p2h.SearchBatch(plain, queries, opts, 2)
			got := p2h.SearchBatch(quantized, queries, opts, 2)
			for qi := 0; qi < queries.N; qi++ {
				requireIdentical(t, "batched", got[qi], want[qi])
			}
		})
	}
}

// TestQuantizedContainerRoundTrip pins the persistence surface: the container
// header records Quantize, the payload carries the mirror, and the restored
// index keeps both the speedup machinery and byte-identical answers.
func TestQuantizedContainerRoundTrip(t *testing.T) {
	data := p2h.Dedup(p2h.GenerateDataset("Sift", 1200, 15))
	queries := p2h.GenerateQueries(data, 10, 16)
	for _, kind := range []string{p2h.KindBallTree, p2h.KindBCTree, p2h.KindSharded} {
		t.Run(kind, func(t *testing.T) {
			_, quantized := quantTwin(t, kind, data)
			var buf bytes.Buffer
			if err := p2h.Save(&buf, quantized); err != nil {
				t.Fatal(err)
			}
			raw := buf.Bytes()
			info, err := p2h.Inspect(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			if !info.Spec.Quantize {
				t.Fatalf("%s container header lost Quantize: %+v", kind, info.Spec)
			}
			loaded, err := p2h.Load(bytes.NewReader(raw))
			if err != nil {
				t.Fatal(err)
			}
			for qi := 0; qi < queries.N; qi++ {
				q := queries.Row(qi)
				want, _ := quantized.Search(q, p2h.SearchOptions{K: 5})
				got, _ := loaded.Search(q, p2h.SearchOptions{K: 5})
				requireIdentical(t, "restored", got, want)
			}
		})
	}
}
