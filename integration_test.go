package p2h

// Integration tests: systematic cross-checks over every index type, every
// synthetic data family, and the parameter axes the unit tests exercise only
// locally. These are the "one library, one answer" guarantees a downstream
// user relies on: with an unlimited budget every index returns the same
// distances as the exhaustive scan, on every data shape, at every k.

import (
	"bytes"
	"math"
	"testing"
)

// integrationFamilies maps a representative data set name per generator
// family (see internal/dataset's catalog).
var integrationFamilies = []string{
	"Sift",  // clustered
	"GloVe", // low-rank
	"Music", // heavy-tail
	"Enron", // sparse
}

// buildAll constructs every index type with small, test-friendly parameters.
func buildAll(data *Matrix) map[string]Index {
	return map[string]Index{
		"balltree": NewBallTree(data, BallTreeOptions{LeafSize: 40, Seed: 11}),
		"bctree":   NewBCTree(data, BCTreeOptions{LeafSize: 40, Seed: 11}),
		"kdtree":   NewKDTree(data, KDTreeOptions{LeafSize: 40}),
		"nh":       NewNH(data, NHOptions{Lambda: 48, M: 8, Seed: 11}),
		"fh":       NewFH(data, FHOptions{Lambda: 48, M: 8, Seed: 11}),
		"quant":    NewQuantizedScan(data),
		"sharded":  NewSharded(data, ShardedOptions{Shards: 5, Seed: 11}),
		"scan":     NewLinearScan(data),
	}
}

func TestIntegrationAllIndexesAllFamiliesExact(t *testing.T) {
	for _, name := range integrationFamilies {
		data := Dedup(GenerateDataset(name, 700, 1))
		queries := GenerateQueries(data, 6, 2)
		for _, k := range []int{1, 7, 25} {
			gt := GroundTruth(data, queries, k)
			for method, ix := range buildAll(data) {
				for qi := 0; qi < queries.N; qi++ {
					res, _ := ix.Search(queries.Row(qi), SearchOptions{K: k})
					if len(res) != len(gt[qi]) {
						t.Fatalf("%s/%s k=%d query %d: %d results, want %d",
							name, method, k, qi, len(res), len(gt[qi]))
					}
					for j := range res {
						want := gt[qi][j].Dist
						if math.Abs(res[j].Dist-want) > 1e-9*(1+want) {
							t.Fatalf("%s/%s k=%d query %d rank %d: dist %v want %v",
								name, method, k, qi, j, res[j].Dist, want)
						}
					}
				}
			}
		}
	}
}

// TestIntegrationBudgetMonotonicity: on every index, growing the budget
// never hurts recall by more than sweep noise, and the full budget is exact.
func TestIntegrationBudgetMonotonicity(t *testing.T) {
	data := Dedup(GenerateDataset("Sift", 1500, 3))
	queries := GenerateQueries(data, 10, 4)
	gt := GroundTruth(data, queries, 10)
	budgets := []int{15, 150, 750, data.N}
	for method, ix := range buildAll(data) {
		var prev float64 = -1
		for _, budget := range budgets {
			var recall float64
			for qi := 0; qi < queries.N; qi++ {
				res, st := ix.Search(queries.Row(qi), SearchOptions{K: 10, Budget: budget})
				recall += Recall(res, gt[qi])
				slack := int64(0)
				if method == "fh" || method == "sharded" {
					slack = 8 // per-partition/per-shard ceil rounding
				}
				if st.Candidates > int64(budget)+slack {
					t.Fatalf("%s budget %d: verified %d", method, budget, st.Candidates)
				}
			}
			recall /= float64(queries.N)
			if recall < prev-0.05 {
				t.Fatalf("%s: recall dropped %v -> %v at budget %d", method, prev, recall, budget)
			}
			prev = recall
		}
		if prev < 1-1e-9 {
			t.Fatalf("%s: full budget recall %v", method, prev)
		}
	}
}

// TestIntegrationSerializedTreesAgree: a save/load cycle preserves exact
// search behavior for both tree types, across families.
func TestIntegrationSerializedTreesAgree(t *testing.T) {
	for _, name := range integrationFamilies {
		data := Dedup(GenerateDataset(name, 500, 5))
		queries := GenerateQueries(data, 5, 6)

		ball := NewBallTree(data, BallTreeOptions{LeafSize: 30, Seed: 7})
		var bb bytes.Buffer
		if err := ball.Save(&bb); err != nil {
			t.Fatal(err)
		}
		ball2, err := LoadBallTree(&bb)
		if err != nil {
			t.Fatal(err)
		}

		bc := NewBCTree(data, BCTreeOptions{LeafSize: 30, Seed: 7})
		var cb bytes.Buffer
		if err := bc.Save(&cb); err != nil {
			t.Fatal(err)
		}
		bc2, err := LoadBCTree(&cb)
		if err != nil {
			t.Fatal(err)
		}

		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			for _, pair := range []struct {
				name string
				a, b Index
			}{{"balltree", ball, ball2}, {"bctree", bc, bc2}} {
				ra, _ := pair.a.Search(q, SearchOptions{K: 5})
				rb, _ := pair.b.Search(q, SearchOptions{K: 5})
				for j := range ra {
					if ra[j] != rb[j] {
						t.Fatalf("%s/%s query %d rank %d: %v != %v",
							name, pair.name, qi, j, ra[j], rb[j])
					}
				}
			}
		}
	}
}

// TestIntegrationLowDimensions: the whole stack works at d=1 and d=2, where
// degenerate geometry (collinear points, zero rejections) is the norm.
func TestIntegrationLowDimensions(t *testing.T) {
	for _, d := range []int{1, 2} {
		rows := make([][]float32, 64)
		for i := range rows {
			row := make([]float32, d)
			for j := range row {
				row[j] = float32(i%8) - 3.5
			}
			rows[i] = row
		}
		data := Dedup(FromRows(rows))
		normal := make([]float32, d)
		normal[0] = 1
		q := Hyperplane(normal, -0.25)
		gtRes, _ := NewLinearScan(data).Search(q, SearchOptions{K: 3})
		for method, ix := range buildAll(data) {
			res, _ := ix.Search(q, SearchOptions{K: 3})
			for j := range gtRes {
				if math.Abs(res[j].Dist-gtRes[j].Dist) > 1e-9*(1+gtRes[j].Dist) {
					t.Fatalf("d=%d %s rank %d: %v want %v", d, method, j, res[j], gtRes[j])
				}
			}
		}
	}
}

// TestIntegrationIdenticalPoints: duplicate-heavy degenerate input (before
// dedup) must not break construction or search on any index.
func TestIntegrationIdenticalPoints(t *testing.T) {
	rows := make([][]float32, 100)
	for i := range rows {
		rows[i] = []float32{1, 2, 3}
	}
	data := FromRows(rows)
	q := Hyperplane([]float32{1, 0, 0}, 0)
	for method, ix := range buildAll(data) {
		res, _ := ix.Search(q, SearchOptions{K: 5})
		if len(res) != 5 {
			t.Fatalf("%s: %d results", method, len(res))
		}
		for _, r := range res {
			if math.Abs(r.Dist-1) > 1e-6 {
				t.Fatalf("%s: distance %v want 1", method, r.Dist)
			}
		}
	}
}

// TestIntegrationHyperplaneThroughPoint: a hyperplane passing exactly
// through a data point must return that point at distance ~0 on every index.
func TestIntegrationHyperplaneThroughPoint(t *testing.T) {
	data := Dedup(GenerateDataset("Sift", 400, 8))
	target := data.Row(123)
	normal := make([]float32, data.D)
	normal[0] = 1
	// offset = -<normal, target>: the plane contains the target point.
	q := Hyperplane(normal, -float64(target[0]))
	for method, ix := range buildAll(data) {
		res, _ := ix.Search(q, SearchOptions{K: 1})
		if res[0].Dist > 1e-5 {
			t.Fatalf("%s: nearest distance %v, want ~0 (plane contains point 123)", method, res[0].Dist)
		}
	}
}

// TestIntegrationStatsConsistency: verified candidates never exceed n, and
// IPCount at least covers the verifications, on every index and family.
func TestIntegrationStatsConsistency(t *testing.T) {
	data := Dedup(GenerateDataset("GloVe", 600, 9))
	queries := GenerateQueries(data, 5, 10)
	for method, ix := range buildAll(data) {
		for qi := 0; qi < queries.N; qi++ {
			_, st := ix.Search(queries.Row(qi), SearchOptions{K: 5})
			if st.Candidates > int64(data.N) {
				t.Fatalf("%s: %d candidates > n", method, st.Candidates)
			}
			if st.IPCount < st.Candidates {
				t.Fatalf("%s: IPCount %d < candidates %d", method, st.IPCount, st.Candidates)
			}
		}
	}
}

// TestIntegrationIndexBytesOrdering: the paper's Table III size ordering
// holds on a common data set: trees are smaller than hash indexes, and the
// quantized codes are smaller than the raw data.
func TestIntegrationIndexBytesOrdering(t *testing.T) {
	data := Dedup(GenerateDataset("Sift", 2000, 11))
	ball := NewBallTree(data, BallTreeOptions{Seed: 1})
	bc := NewBCTree(data, BCTreeOptions{Seed: 1})
	nhIx := NewNH(data, NHOptions{M: 32, Seed: 1})
	fhIx := NewFH(data, FHOptions{M: 32, Seed: 1})
	if ball.IndexBytes() >= nhIx.IndexBytes() || bc.IndexBytes() >= nhIx.IndexBytes() {
		t.Fatalf("trees (%d, %d) must be smaller than NH (%d)",
			ball.IndexBytes(), bc.IndexBytes(), nhIx.IndexBytes())
	}
	if ball.IndexBytes() >= fhIx.IndexBytes() || bc.IndexBytes() >= fhIx.IndexBytes() {
		t.Fatalf("trees (%d, %d) must be smaller than FH (%d)",
			ball.IndexBytes(), bc.IndexBytes(), fhIx.IndexBytes())
	}
	if bc.IndexBytes() <= ball.IndexBytes() {
		t.Fatalf("BC-Tree (%d) must carry more than Ball-Tree (%d): the 3n leaf arrays",
			bc.IndexBytes(), ball.IndexBytes())
	}
}

// TestIntegrationDeterministicEndToEnd: two identical builds answer a whole
// query batch identically, for every index type.
func TestIntegrationDeterministicEndToEnd(t *testing.T) {
	data := Dedup(GenerateDataset("Music", 500, 12))
	queries := GenerateQueries(data, 8, 13)
	a := buildAll(data)
	b := buildAll(data)
	for method := range a {
		for qi := 0; qi < queries.N; qi++ {
			ra, _ := a[method].Search(queries.Row(qi), SearchOptions{K: 5, Budget: 100})
			rb, _ := b[method].Search(queries.Row(qi), SearchOptions{K: 5, Budget: 100})
			if len(ra) != len(rb) {
				t.Fatalf("%s query %d: result counts differ", method, qi)
			}
			for j := range ra {
				if ra[j] != rb[j] {
					t.Fatalf("%s query %d rank %d: %v != %v", method, qi, j, ra[j], rb[j])
				}
			}
		}
	}
}

// TestIntegrationFilterConsistency: with a filter restricting the search to
// even ids, every index returns exactly the filtered exhaustive answer, and
// no odd id ever appears.
func TestIntegrationFilterConsistency(t *testing.T) {
	data := Dedup(GenerateDataset("Sift", 600, 14))
	queries := GenerateQueries(data, 6, 15)
	even := func(id int32) bool { return id%2 == 0 }
	ref := NewLinearScan(data)
	for method, ix := range buildAll(data) {
		for qi := 0; qi < queries.N; qi++ {
			q := queries.Row(qi)
			res, _ := ix.Search(q, SearchOptions{K: 5, Filter: even})
			want, _ := ref.Search(q, SearchOptions{K: 5, Filter: even})
			if len(res) != len(want) {
				t.Fatalf("%s query %d: %d results, want %d", method, qi, len(res), len(want))
			}
			for j := range res {
				if res[j].ID%2 != 0 {
					t.Fatalf("%s query %d: odd id %d slipped through", method, qi, res[j].ID)
				}
				if math.Abs(res[j].Dist-want[j].Dist) > 1e-9*(1+want[j].Dist) {
					t.Fatalf("%s query %d rank %d: %v want %v", method, qi, j, res[j], want[j])
				}
			}
		}
	}
}
