package p2h

import (
	"fmt"
	"runtime"
	"sync"

	"p2h/internal/attr"
	"p2h/internal/dynamic"
	"p2h/internal/quant"
	"p2h/internal/shard"
)

// ShardedOptions configures NewSharded.
type ShardedOptions struct {
	// Shards is the number of partitions (and the maximum query
	// parallelism). Zero selects GOMAXPROCS.
	Shards int
	// LeafSize is each shard tree's N0; zero selects 100.
	LeafSize int
	// Seed makes construction deterministic.
	Seed int64
	// Workers bounds the goroutines used per query; zero selects
	// min(Shards, GOMAXPROCS), 1 makes queries sequential.
	Workers int
	// Quantize stores an 8-bit leaf mirror on every shard tree and filters
	// leaf rows through its exact error bound; see Spec.Quantize.
	Quantize bool
}

// Sharded is a parallel BC-Tree index: the data is partitioned into compact
// shards (the paper's Section III-A(4) scalability observation), one BC-Tree
// per shard, and queries fan out over goroutines with an exact merge.
type Sharded struct {
	index *shard.Index
	raw   int
}

// NewSharded indexes the rows of data across multiple shard trees. It is a
// thin wrapper over New with Spec{Kind: KindSharded} that panics where New
// returns an error.
func NewSharded(data *Matrix, opts ShardedOptions) *Sharded {
	return mustNew(data, Spec{
		Kind:     KindSharded,
		Shards:   opts.Shards,
		LeafSize: opts.LeafSize,
		Seed:     opts.Seed,
		Workers:  opts.Workers,
		Quantize: opts.Quantize,
	}).(*Sharded)
}

// ShardPlan returns the row partition a Sharded build over data with this
// spec uses: one slice of data row indices per shard, in shard order. It is
// deterministic in spec.Seed and byte-for-byte the partition New(data, spec)
// with Kind KindSharded produces, so a cluster deployment can split the data
// set across member daemons — shard i served as a KindBCTree index built
// over data.SubsetRows(plan[i]) with Seed spec.Seed+int64(i)+1 — and a
// scatter-gather merge over those members reproduces the in-process Sharded
// results exactly. Spec fields other than Shards, LeafSize and Seed do not
// affect the plan. It panics on empty data.
func ShardPlan(data *Matrix, spec Spec) [][]int32 {
	return shard.Plan(data.AppendOnes(), shard.Config{
		Shards:   spec.Shards,
		LeafSize: spec.LeafSize,
		Seed:     spec.Seed,
		Workers:  spec.Workers,
		Quantize: spec.Quantize,
	})
}

// Search implements Index. SearchOptions.Profile is ignored (the per-phase
// timers are not meaningful across concurrent shards).
func (t *Sharded) Search(q []float32, opts SearchOptions) ([]Result, Stats) {
	return t.index.Search(checkQuery(q, t.raw), opts)
}

// IndexBytes implements Index.
func (t *Sharded) IndexBytes() int64 { return t.index.IndexBytes() }

// N implements Index.
func (t *Sharded) N() int { return t.index.N() }

// Dim implements Index.
func (t *Sharded) Dim() int { return t.raw }

// Shards returns the number of shard trees.
func (t *Sharded) Shards() int { return t.index.Shards() }

var _ Index = (*Sharded)(nil)

// DynamicOptions configures NewDynamic.
type DynamicOptions struct {
	// Dim is the data dimensionality, required when starting empty
	// (initial data == nil); otherwise it is taken from the data.
	Dim int
	// LeafSize is the underlying BC-Tree's N0; zero selects 100.
	LeafSize int
	// Seed makes rebuilds deterministic.
	Seed int64
	// RebuildFraction triggers a tree rebuild when pending inserts plus
	// tombstones exceed this fraction of the live set (zero: 0.25).
	RebuildFraction float64
}

// Dynamic is a mutable P2HNNS index: a BC-Tree snapshot plus an insert
// buffer and delete tombstones, rebuilt automatically as the delta grows.
// Results carry stable handles assigned by Insert. Not safe for concurrent
// mutation.
type Dynamic struct {
	index *dynamic.Index
	raw   int
}

// NewDynamic creates a mutable index, optionally bulk-loaded with the rows
// of data (handles are then the row indices). Pass data == nil and
// opts.Dim to start empty. It is a thin wrapper over New with
// Spec{Kind: KindDynamic} that panics where New returns an error.
func NewDynamic(data *Matrix, opts DynamicOptions) *Dynamic {
	return mustNew(data, Spec{
		Kind:            KindDynamic,
		Dim:             opts.Dim,
		LeafSize:        opts.LeafSize,
		Seed:            opts.Seed,
		RebuildFraction: opts.RebuildFraction,
	}).(*Dynamic)
}

// Insert adds a point and returns its stable handle.
func (t *Dynamic) Insert(p []float32) int32 {
	return t.index.Insert(liftPoint(p, t.raw))
}

// InsertWithAttrs adds a point with an attribute payload and returns its
// stable handle. The index keeps the payload (callers must not mutate it);
// searches with SearchOptions.Pred evaluate it per handle.
func (t *Dynamic) InsertWithAttrs(p []float32, at PointAttrs) int32 {
	return t.index.InsertWithAttrs(liftPoint(p, t.raw), at)
}

// Delete removes a handle; it reports whether the handle was live.
func (t *Dynamic) Delete(handle int32) bool { return t.index.Delete(handle) }

// Search implements Index over the current live set.
func (t *Dynamic) Search(q []float32, opts SearchOptions) ([]Result, Stats) {
	return t.index.Search(checkQuery(q, t.raw), opts)
}

// IndexBytes implements Index.
func (t *Dynamic) IndexBytes() int64 { return t.index.IndexBytes() }

// N implements Index: the number of live points.
func (t *Dynamic) N() int { return t.index.N() }

// Dim implements Index.
func (t *Dynamic) Dim() int { return t.raw }

// Handles returns the number of handles ever issued, including deleted
// ones: the next Insert returns exactly Handles(). The write-ahead log uses
// it as the replay boundary between snapshot contents and logged mutations.
func (t *Dynamic) Handles() int { return t.index.Handles() }

// Pending reports the delta queries currently pay for beyond the tree:
// buffered inserts (scanned exhaustively per query) plus tree tombstones
// (filtered during traversal). Rebuilds and compactions drive it back
// toward zero.
func (t *Dynamic) Pending() int { return t.index.Pending() }

// SetBackgroundCompaction hands delta folding to a serving engine (true) or
// back to inline rebuilds inside Insert/Delete (false, the default). Part
// of the server.Compactor surface; NewServer flips it when
// ServerOptions.BackgroundCompaction is set.
func (t *Dynamic) SetBackgroundCompaction(on bool) { t.index.SetBackgroundCompaction(on) }

// CompactionNeeded reports whether the delta (insert buffer + tombstones)
// has outgrown the compaction threshold (Spec.CompactFraction, falling back
// to Spec.RebuildFraction).
func (t *Dynamic) CompactionNeeded() bool { return t.index.CompactionNeeded() }

// BeginCompaction captures a background rebuild of the delta: build runs
// without any lock (searches and mutations proceed concurrently), install
// swaps the fresh tree in and reconciles mutations that raced the build.
// Both closures are nil when there is nothing to fold. The caller must hold
// whatever lock serializes mutations around BeginCompaction and install —
// the serving engine drives this; direct users of a bare Dynamic can call
// Compact instead.
func (t *Dynamic) BeginCompaction() (build, install func()) {
	c := t.index.BeginCompaction()
	if c == nil {
		return nil, nil
	}
	cfg := t.index.Configuration()
	return func() { c.Build(cfg) }, func() { t.index.Install(c) }
}

// Compact runs one capture/build/install compaction cycle inline and
// reports whether there was anything to fold.
func (t *Dynamic) Compact() bool { return t.index.Compact() }

var _ Index = (*Dynamic)(nil)

// QuantizedScan is an exhaustive baseline over 8-bit quantized codes: a
// cheap approximate pass filters points through a rigorous error bound, and
// only survivors are verified against the float vectors, so results stay
// exact while the hot loop reads 4x less memory. One of the optimizations
// the paper's Section III-A(4) says the tree methods combine with.
type QuantizedScan struct {
	scan  *quant.Scan
	raw   int
	attrs *attr.Store
}

// NewQuantizedScan quantizes and indexes the rows of data. It is a thin
// wrapper over New with Spec{Kind: KindQuantizedScan} that panics where New
// returns an error.
func NewQuantizedScan(data *Matrix) *QuantizedScan {
	return mustNew(data, Spec{Kind: KindQuantizedScan}).(*QuantizedScan)
}

// Search implements Index; results are exact despite the quantized filter.
func (t *QuantizedScan) Search(q []float32, opts SearchOptions) ([]Result, Stats) {
	opts, empty := applyPred(opts, t.attrs)
	if empty {
		return nil, Stats{}
	}
	return t.scan.Search(checkQuery(q, t.raw), opts)
}

// IndexBytes implements Index.
func (t *QuantizedScan) IndexBytes() int64 { return t.scan.IndexBytes() }

// N implements Index.
func (t *QuantizedScan) N() int { return t.scan.N() }

// Dim implements Index.
func (t *QuantizedScan) Dim() int { return t.raw }

var _ Index = (*QuantizedScan)(nil)

// SearchBatch answers many hyperplane queries on any index, using at most
// workers goroutines (zero selects GOMAXPROCS). Results are returned in
// query order and are identical to per-query Search calls.
//
// Indexes with a native batched path (BatchIndex: BallTree, BCTree,
// Sharded) serve contiguous sub-batches through their shared traversal —
// one arena walk and one pass over each visited leaf block per sub-batch
// instead of per query — with the sub-batches spread across the workers.
// Other indexes fall back to a per-query worker loop. Every index in this
// library is safe for concurrent readers.
//
// SearchOptions.Profile is honored only when the whole batch runs on one
// goroutine (workers == 1 on a non-batched index); on every parallel path
// it is ignored, matching Sharded.Search — concurrent workers cannot share
// one per-phase timer.
func SearchBatch(ix Index, queries *Matrix, opts SearchOptions, workers int) [][]Result {
	if queries.D != ix.Dim()+1 {
		panic(fmt.Sprintf("p2h: %v: batch queries have dimension %d, want %d",
			ErrDimMismatch, queries.D, ix.Dim()+1))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > queries.N {
		workers = queries.N
	}
	if workers > 1 {
		// All workers would share this one Profile pointer; dropping it here
		// keeps concurrent Search calls race-free (and the timings a single
		// traversal would record are not meaningful split across goroutines).
		opts.Profile = nil
	}
	out := make([][]Result, queries.N)
	if queries.N == 0 {
		return out
	}

	if bi, ok := ix.(BatchIndex); ok {
		// Sharded parallelizes internally (bounded by its own Workers);
		// splitting its batch here would both oversubscribe the CPU
		// (workers × shard workers goroutines) and walk every shard tree
		// once per sub-batch instead of once per batch. But that routing
		// only wins when the shared batched traversal actually engages
		// (exact, unfiltered options) and the shard fan-out offers
		// comparable parallelism; otherwise — budgeted or filtered batches,
		// or fewer shards than workers — the worker split below keeps the
		// caller's parallelism.
		if sh, sharded := ix.(*Sharded); sharded &&
			opts.Budget <= 0 && opts.Filter == nil && opts.Pred == nil && opts.Profile == nil &&
			sh.Shards() >= workers {
			res, _ := bi.SearchBatch(queries, opts)
			return res
		}
		if workers <= 1 {
			res, _ := bi.SearchBatch(queries, opts)
			return res
		}
		chunk := (queries.N + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < queries.N; lo += chunk {
			hi := lo + chunk
			if hi > queries.N {
				hi = queries.N
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				sub := &Matrix{
					Data: queries.Data[lo*queries.D : hi*queries.D],
					N:    hi - lo,
					D:    queries.D,
				}
				res, _ := bi.SearchBatch(sub, opts)
				copy(out[lo:hi], res)
			}(lo, hi)
		}
		wg.Wait()
		return out
	}

	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= queries.N {
					return
				}
				out[i], _ = ix.Search(queries.Row(i), opts)
			}
		}()
	}
	wg.Wait()
	return out
}

// TuneBudget finds the smallest candidate budget (among fractions of the
// data size) whose mean recall over the sample queries reaches target, and
// returns that budget. If even the full budget misses the target (possible
// only for the hashing indexes' probe ordering pathologies), the data size
// is returned. Use the returned value as SearchOptions.Budget.
//
// Typical use: generate a handful of representative queries, compute their
// ground truth once, and tune offline; the paper's "candidate fraction"
// tuning in code.
func TuneBudget(ix Index, queries *Matrix, gt [][]Result, k int, target float64) int {
	if queries.N == 0 || len(gt) < queries.N {
		panic("p2h: TuneBudget needs ground truth for every sample query")
	}
	n := ix.N()
	fractions := []float64{0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0}
	for _, f := range fractions {
		budget := int(f * float64(n))
		if budget < 1 {
			budget = 1
		}
		var recall float64
		for i := 0; i < queries.N; i++ {
			res, _ := ix.Search(queries.Row(i), SearchOptions{K: k, Budget: budget})
			recall += Recall(res, gt[i][:min(k, len(gt[i]))])
		}
		if recall/float64(queries.N) >= target {
			return budget
		}
	}
	return n
}
