module p2h

go 1.24
