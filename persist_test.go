package p2h

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

var updateGolden = flag.Bool("update", false, "regenerate the golden index fixtures under testdata/golden")

// goldenRecipes builds each persistable kind the exact same way every run:
// fixed data, fixed seeds, and for the dynamic kind a fixed mutation tail so
// the fixture holds a snapshot, tombstones and a buffer at once.
func goldenRecipes(t *testing.T) map[string]Index {
	t.Helper()
	data := specTestData(150, 8, 11)
	recipes := map[string]Index{}
	var err error
	if recipes[KindBallTree], err = New(data, Spec{Kind: KindBallTree, LeafSize: 24, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if recipes[KindBCTree], err = New(data, Spec{Kind: KindBCTree, LeafSize: 24, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	if recipes[KindKDTree], err = New(data, Spec{Kind: KindKDTree, LeafSize: 24}); err != nil {
		t.Fatal(err)
	}
	if recipes[KindSharded], err = New(data, Spec{Kind: KindSharded, Shards: 3, Workers: 2, LeafSize: 24, Seed: 3}); err != nil {
		t.Fatal(err)
	}
	dyn, err := New(data, Spec{Kind: KindDynamic, LeafSize: 24, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d := dyn.(*Dynamic)
	for _, h := range []int32{2, 77, 141} {
		if !d.Delete(h) {
			t.Fatalf("golden dynamic: Delete(%d) = false", h)
		}
	}
	extra := specTestData(5, 8, 12)
	for i := 0; i < extra.N; i++ {
		d.Insert(extra.Row(i))
	}
	recipes[KindDynamic] = d
	return recipes
}

func goldenPath(kind string) string {
	return filepath.Join("testdata", "golden", kind+".p2h")
}

// TestGoldenFixtures pins the container format: committed fixture files for
// every persistable kind keep loading (and answering queries identically to
// a fresh build) as the code evolves. Regenerate with `go test -run
// TestGoldenFixtures -update .` after an intentional format change.
func TestGoldenFixtures(t *testing.T) {
	recipes := goldenRecipes(t)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
		for kind, ix := range recipes {
			if err := SaveFile(goldenPath(kind), ix); err != nil {
				t.Fatalf("update %s: %v", kind, err)
			}
		}
	}

	queries := GenerateQueries(specTestData(150, 8, 11), 8, 21)
	for kind, fresh := range recipes {
		loaded, err := Open(goldenPath(kind))
		if err != nil {
			t.Fatalf("golden %s: %v", kind, err)
		}
		if got := KindOf(loaded); got != kind {
			t.Fatalf("golden %s: KindOf = %q", kind, got)
		}
		if loaded.N() != fresh.N() || loaded.Dim() != fresh.Dim() {
			t.Fatalf("golden %s: shape %d/%d, want %d/%d", kind, loaded.N(), loaded.Dim(), fresh.N(), fresh.Dim())
		}
		for qi := 0; qi < queries.N; qi++ {
			want, _ := fresh.Search(queries.Row(qi), SearchOptions{K: 6})
			got, _ := loaded.Search(queries.Row(qi), SearchOptions{K: 6})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("golden %s: query %d diverges from a fresh build", kind, qi)
			}
		}
	}
}

// TestSaveLoadRoundTripEveryPersistableKind: in-memory Save->Load for every
// persistable kind with byte-identical search results (exact, budgeted and
// filtered), and Save->Load->Save byte equality.
func TestSaveLoadRoundTripEveryPersistableKind(t *testing.T) {
	recipes := goldenRecipes(t)
	queries := GenerateQueries(specTestData(150, 8, 11), 6, 33)
	for kind, orig := range recipes {
		var buf bytes.Buffer
		if err := Save(&buf, orig); err != nil {
			t.Fatalf("%s: Save: %v", kind, err)
		}
		loaded, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: Load: %v", kind, err)
		}
		for qi := 0; qi < queries.N; qi++ {
			for _, opts := range []SearchOptions{
				{K: 5},
				{K: 3, Budget: 40},
				{K: 4, Filter: func(id int32) bool { return id%2 == 0 }},
			} {
				want, _ := orig.Search(queries.Row(qi), opts)
				got, _ := loaded.Search(queries.Row(qi), opts)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s: query %d opts %+v diverges after round trip", kind, qi, opts)
				}
			}
		}
		var buf2 bytes.Buffer
		if err := Save(&buf2, loaded); err != nil {
			t.Fatalf("%s: re-Save: %v", kind, err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatalf("%s: Save -> Load -> Save is not byte-identical", kind)
		}
	}
}

// TestSaveBuildOnlyKindsRefuse: NH, FH and the scans are registered
// build-only; Save must say so instead of writing an unloadable file.
func TestSaveBuildOnlyKindsRefuse(t *testing.T) {
	data := specTestData(80, 6, 5)
	for _, kind := range []string{KindNH, KindFH, KindLinearScan, KindQuantizedScan} {
		ix, err := New(data, Spec{Kind: kind})
		if err != nil {
			t.Fatalf("New(%s): %v", kind, err)
		}
		var buf bytes.Buffer
		if err := Save(&buf, ix); err == nil {
			t.Fatalf("%s: Save succeeded on a build-only kind", kind)
		}
	}
}

// TestLoadLegacyBareStreams: files written by the pre-container Save methods
// ((*BallTree).Save / (*BCTree).Save) load through the package-level Load
// and Open by magic sniffing.
func TestLoadLegacyBareStreams(t *testing.T) {
	data := specTestData(120, 7, 9)
	queries := GenerateQueries(data, 4, 10)

	bt := NewBallTree(data, BallTreeOptions{LeafSize: 20, Seed: 1})
	bc := NewBCTree(data, BCTreeOptions{LeafSize: 20, Seed: 1})
	for kind, pair := range map[string]struct {
		save func(*bytes.Buffer) error
		ref  Index
	}{
		KindBallTree: {func(b *bytes.Buffer) error { return bt.Save(b) }, bt},
		KindBCTree:   {func(b *bytes.Buffer) error { return bc.Save(b) }, bc},
	} {
		var buf bytes.Buffer
		if err := pair.save(&buf); err != nil {
			t.Fatalf("%s: bare Save: %v", kind, err)
		}
		ix, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: Load of bare stream: %v", kind, err)
		}
		if got := KindOf(ix); got != kind {
			t.Fatalf("%s: KindOf = %q", kind, got)
		}
		for qi := 0; qi < queries.N; qi++ {
			want, _ := pair.ref.Search(queries.Row(qi), SearchOptions{K: 3})
			got, _ := ix.Search(queries.Row(qi), SearchOptions{K: 3})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: query %d diverges after bare-stream load", kind, qi)
			}
		}
	}

	// And via the file variants: SaveFile (bare) -> Open (container-aware).
	dir := t.TempDir()
	path := filepath.Join(dir, "legacy.bt")
	if err := bt.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	ix, err := Open(path)
	if err != nil {
		t.Fatalf("Open of bare file: %v", err)
	}
	if KindOf(ix) != KindBallTree {
		t.Fatalf("KindOf = %q", KindOf(ix))
	}
}

// buildContainer assembles a container by hand for corruption tests.
func buildContainer(kind, specJSON string, payload []byte) []byte {
	var buf bytes.Buffer
	buf.Write(containerMagic)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(len(kind)))
	buf.Write(n[:])
	buf.WriteString(kind)
	binary.LittleEndian.PutUint32(n[:], uint32(len(specJSON)))
	buf.Write(n[:])
	buf.WriteString(specJSON)
	buf.Write(payload)
	return buf.Bytes()
}

func TestLoadRejectsMalformedContainers(t *testing.T) {
	// A good container to truncate.
	ix, err := New(specTestData(100, 5, 2), Spec{Kind: KindBCTree, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, ix); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	for _, cut := range []int{0, 3, 8, 10, 14, 20, len(good) / 2, len(good) - 1} {
		if _, err := Load(bytes.NewReader(good[:cut])); !errors.Is(err, ErrFormat) {
			t.Fatalf("truncated at %d: err = %v, want ErrFormat", cut, err)
		}
	}

	cases := []struct {
		name    string
		data    []byte
		wantErr error
	}{
		{"empty", nil, ErrFormat},
		{"bad magic", []byte("WHATEVER-THIS-IS"), ErrFormat},
		{"unknown kind", buildContainer("frobtree", `{"kind":"frobtree"}`, nil), ErrUnknownKind},
		{"build-only kind tag", buildContainer("nh", `{"kind":"nh"}`, nil), ErrFormat},
		{"bad spec json", buildContainer(KindBCTree, `{not json`, nil), ErrFormat},
		{"empty payload", buildContainer(KindBCTree, `{"kind":"bctree"}`, nil), ErrFormat},
		{"garbage payload", buildContainer(KindBCTree, `{"kind":"bctree"}`, []byte("garbage-bytes-here")), ErrFormat},
		{"oversized kind len", func() []byte {
			b := buildContainer(KindBCTree, `{}`, nil)
			binary.LittleEndian.PutUint32(b[8:12], 1<<30)
			return b
		}(), ErrFormat},
	}
	for _, c := range cases {
		if _, err := Load(bytes.NewReader(c.data)); !errors.Is(err, c.wantErr) {
			t.Fatalf("%s: err = %v, want %v", c.name, err, c.wantErr)
		}
	}

	// Open wraps the path into the error.
	dir := t.TempDir()
	path := filepath.Join(dir, "corrupt.p2h")
	if err := os.WriteFile(path, []byte("not an index at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); !errors.Is(err, ErrFormat) {
		t.Fatalf("Open corrupt: err = %v, want ErrFormat", err)
	}
	if _, err := Open(filepath.Join(dir, "missing.p2h")); err == nil {
		t.Fatal("Open of a missing file succeeded")
	}
}

// TestSaveFileCleansUpOnError: a failed Save must not leave a half-written
// container behind.
func TestSaveFileCleansUpOnError(t *testing.T) {
	data := specTestData(50, 4, 1)
	nh, err := New(data, Spec{Kind: KindNH})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "nope.p2h")
	if err := SaveFile(path, nh); err == nil {
		t.Fatal("SaveFile succeeded on a build-only kind")
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("SaveFile left %s behind (stat err: %v)", path, err)
	}
}

// TestContainerSpecRecorded: the envelope carries the Spec, so a saved index
// describes its own tuning (kind, leaf size, shard layout).
func TestContainerSpecRecorded(t *testing.T) {
	ix, err := New(specTestData(120, 6, 3), Spec{Kind: KindSharded, Shards: 3, Workers: 2, LeafSize: 30, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, ix); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if !bytes.Contains(b, []byte(`"kind":"sharded"`)) ||
		!bytes.Contains(b, []byte(`"leaf_size":30`)) ||
		!bytes.Contains(b, []byte(`"shards":3`)) {
		t.Fatalf("container header does not record the spec: %q", b[:120])
	}
}

// TestInspectEveryPersistableKind: Inspect reports kind, Spec, raw dim and
// point count from the header region alone, for every kind Save can write.
func TestInspectEveryPersistableKind(t *testing.T) {
	for kind, ix := range goldenRecipes(t) {
		var buf bytes.Buffer
		if err := Save(&buf, ix); err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		info, err := Inspect(&buf)
		if err != nil {
			t.Fatalf("%s: Inspect: %v", kind, err)
		}
		if info.Kind != kind || info.Legacy {
			t.Fatalf("%s: Inspect kind=%q legacy=%v", kind, info.Kind, info.Legacy)
		}
		if info.Spec.Kind != kind {
			t.Fatalf("%s: Inspect spec kind %q", kind, info.Spec.Kind)
		}
		if info.Dim != ix.Dim() || info.N != ix.N() {
			t.Fatalf("%s: Inspect dim=%d n=%d, want dim=%d n=%d", kind, info.Dim, info.N, ix.Dim(), ix.N())
		}
	}
}

// TestInspectReadsOnlyThePrefix: the whole point of Inspect — on a large
// container only the header region is consumed, not the payload body. (The
// dynamic kind is the documented exception: it skips the vectors but reads
// its liveness bitmap at the end of the stream.)
func TestInspectReadsOnlyThePrefix(t *testing.T) {
	ix, err := New(specTestData(5000, 16, 21), Spec{Kind: KindBallTree, LeafSize: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, ix); err != nil {
		t.Fatal(err)
	}
	total := buf.Len()
	info, err := Inspect(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.N != 5000 || info.Dim != 16 {
		t.Fatalf("inspect: %+v", info)
	}
	if consumed := total - buf.Len(); consumed > 64<<10 || consumed >= total/2 {
		t.Fatalf("Inspect consumed %d of %d bytes", consumed, total)
	}
}

// TestInspectLegacyBareStream: bare (*BallTree).Save output predating the
// container is sniffed by magic and still reports its shape.
func TestInspectLegacyBareStream(t *testing.T) {
	data := specTestData(80, 5, 9)
	bt := NewBallTree(data, BallTreeOptions{LeafSize: 16, Seed: 2})
	var buf bytes.Buffer
	if err := bt.Save(&buf); err != nil {
		t.Fatal(err)
	}
	info, err := Inspect(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Legacy || info.Kind != KindBallTree || info.Dim != 5 || info.N != 80 {
		t.Fatalf("legacy inspect: %+v", info)
	}
}

// TestInspectUnknownPayload: a container naming an out-of-tree kind still
// reports its header; the unknown shape comes back as -1.
func TestInspectUnknownPayload(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(containerMagic)
	block := func(b []byte) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(b)))
		buf.Write(n[:])
		buf.Write(b)
	}
	block([]byte("mycustom"))
	block([]byte(`{"kind":"mycustom","leaf_size":7}`))
	buf.Write([]byte("XYZPAY01rest-of-the-payload"))
	info, err := Inspect(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "mycustom" || info.Spec.LeafSize != 7 || info.Dim != -1 || info.N != -1 {
		t.Fatalf("unknown-payload inspect: %+v", info)
	}
}

// TestInspectRejectsMalformed: garbage and truncation fail with ErrFormat
// rather than a misread shape.
func TestInspectRejectsMalformed(t *testing.T) {
	ix, err := New(specTestData(60, 4, 5), Spec{Kind: KindBCTree, LeafSize: 20})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, ix); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	for name, b := range map[string][]byte{
		"garbage":         []byte("not an index container at all"),
		"empty":           {},
		"cut mid-header":  good[:10],
		"cut mid-payload": good[:len(good)-(len(good)-30)], // 30 bytes: inside the kind/spec blocks
	} {
		if _, err := Inspect(bytes.NewReader(b)); !errors.Is(err, ErrFormat) {
			t.Errorf("%s: Inspect err = %v, want ErrFormat", name, err)
		}
	}
}

// TestInspectFileMatchesOpen: the file-level wrapper agrees with what a full
// Open observes.
func TestInspectFileMatchesOpen(t *testing.T) {
	data := specTestData(90, 6, 7)
	ix, err := New(data, Spec{Kind: KindDynamic, LeafSize: 25, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	d := ix.(*Dynamic)
	d.Delete(4)
	d.Delete(40)
	path := filepath.Join(t.TempDir(), "dyn.p2h")
	if err := SaveFile(path, d); err != nil {
		t.Fatal(err)
	}
	info, err := InspectFile(path)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != KindOf(loaded) || info.Dim != loaded.Dim() || info.N != loaded.N() {
		t.Fatalf("InspectFile %+v disagrees with Open (kind=%s dim=%d n=%d)",
			info, KindOf(loaded), loaded.Dim(), loaded.N())
	}
	if info.Spec.LeafSize != 25 {
		t.Fatalf("InspectFile spec: %+v", info.Spec)
	}
}

// TestInspectTinyUnknownPayload: an out-of-tree kind whose payload is
// shorter than any built-in magic still inspects to its header, shape
// unknown.
func TestInspectTinyUnknownPayload(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(containerMagic)
	block := func(b []byte) {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(b)))
		buf.Write(n[:])
		buf.Write(b)
	}
	block([]byte("tinykind"))
	block([]byte(`{"kind":"tinykind"}`))
	buf.Write([]byte("abc")) // 3-byte payload: shorter than any magic
	info, err := Inspect(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != "tinykind" || info.Dim != -1 || info.N != -1 {
		t.Fatalf("tiny-payload inspect: %+v", info)
	}
}
