package p2h

import (
	"fmt"
	"io"

	"p2h/internal/attr"
	"p2h/internal/balltree"
	"p2h/internal/bctree"
	"p2h/internal/core"
	"p2h/internal/fh"
	"p2h/internal/kdtree"
	"p2h/internal/linearscan"
	"p2h/internal/nh"
	"p2h/internal/vec"
)

// Matrix is a dense row-major collection of vectors; see FromRows.
type Matrix = vec.Matrix

// Result is one answer of a top-k query: a data point ID (row index of the
// data matrix) and its point-to-hyperplane distance.
type Result = core.Result

// Stats counts the work one query performed.
type Stats = core.Stats

// SearchOptions parameterizes one query; the zero value asks for the exact
// single nearest neighbor.
type SearchOptions = core.SearchOptions

// Profile is the optional per-phase time breakdown of a query.
type Profile = core.Profile

// Preference selects the tree traversal order.
type Preference = core.Preference

// Branch preference choices (paper Section III-C). PrefCenter is the default
// and the uniformly better option (paper Figure 7).
const (
	PrefCenter     = core.PrefCenter
	PrefLowerBound = core.PrefLowerBound
)

// NewMatrix allocates an n x d matrix of zeros.
func NewMatrix(n, d int) *Matrix { return vec.NewMatrix(n, d) }

// FromRows builds a data matrix by copying equal-length rows.
func FromRows(rows [][]float32) *Matrix { return vec.FromRows(rows) }

// Index is the common interface of every P2HNNS index in this library.
//
// Search panics if the query dimensionality is not Dim()+1 (normal plus
// offset); mismatched dimensions are a programming error, not a runtime
// condition.
type Index interface {
	// Search returns the top-k points nearest the hyperplane q = (w; b).
	Search(q []float32, opts SearchOptions) ([]Result, Stats)
	// IndexBytes reports the memory footprint of the index structure.
	IndexBytes() int64
	// N returns the number of indexed points.
	N() int
	// Dim returns the dimensionality of the indexed points.
	Dim() int
}

// canonicalQuery validates that q is a hyperplane over d-dimensional points
// and rescales it to a unit normal if needed, returning the query to use.
// Validation goes through core.CheckQuery — the one checked path shared with
// the batch surface and the serving engine — and reports ErrDimMismatch /
// ErrZeroNormal. A normal already within core.UnitNormBand of unit length
// passes as-is, sparing upstream-normalized queries a copy-and-rescale.
func canonicalQuery(q []float32, d int) ([]float32, error) {
	n, err := core.CheckQuery(q, d)
	if err != nil {
		return nil, err
	}
	if core.UnitNormBand(n) {
		return q, nil
	}
	out := make([]float32, len(q))
	copy(out, q)
	vec.Scale(out, 1/n)
	return out, nil
}

// checkQuery is the panicking wrapper over canonicalQuery backing the Index
// Search contract (mismatched dimensions are a programming error).
func checkQuery(q []float32, d int) []float32 {
	out, err := canonicalQuery(q, d)
	if err != nil {
		panic("p2h: " + err.Error())
	}
	return out
}

// Hyperplane assembles a query vector from a normal and an offset: the
// hyperplane {y : <normal, y> + offset = 0}.
func Hyperplane(normal []float32, offset float64) []float32 {
	q := make([]float32, len(normal)+1)
	copy(q, normal)
	q[len(normal)] = float32(offset)
	return q
}

// Distance returns the exact point-to-hyperplane distance of the paper's
// Equation 1; unlike index results it does not require a unit normal.
func Distance(p []float32, q []float32) float64 {
	if len(q) != len(p)+1 {
		panic(fmt.Sprintf("p2h: query has dimension %d, want %d", len(q), len(p)+1))
	}
	n := vec.Norm(q[:len(p)])
	if n == 0 {
		panic("p2h: hyperplane normal must be non-zero")
	}
	num := vec.Dot(p, q[:len(p)]) + float64(q[len(p)])
	if num < 0 {
		num = -num
	}
	return num / n
}

// BallTreeOptions configures NewBallTree. The zero value uses the paper's
// defaults (N0 = 100).
type BallTreeOptions struct {
	// LeafSize is the maximum leaf size N0; zero selects 100.
	LeafSize int
	// Seed makes construction deterministic.
	Seed int64
	// Quantize stores an 8-bit leaf mirror and filters leaf rows through its
	// exact error bound before float verification; see Spec.Quantize.
	Quantize bool
}

// BallTree is the paper's Section III index.
type BallTree struct {
	tree *balltree.Tree
	raw  int // raw point dimensionality d
}

// NewBallTree indexes the rows of data (raw points; the lift x = (p; 1) is
// internal). It is a thin wrapper over New with Spec{Kind: KindBallTree}
// that panics where New returns an error.
func NewBallTree(data *Matrix, opts BallTreeOptions) *BallTree {
	return mustNew(data, Spec{
		Kind: KindBallTree, LeafSize: opts.LeafSize, Seed: opts.Seed, Quantize: opts.Quantize,
	}).(*BallTree)
}

// Search implements Index.
func (t *BallTree) Search(q []float32, opts SearchOptions) ([]Result, Stats) {
	return t.tree.Search(checkQuery(q, t.raw), opts)
}

// IndexBytes implements Index.
func (t *BallTree) IndexBytes() int64 { return t.tree.IndexBytes() }

// N implements Index.
func (t *BallTree) N() int { return t.tree.N() }

// Dim implements Index.
func (t *BallTree) Dim() int { return t.raw }

// SearchNN returns the k indexed points nearest to the point p in Euclidean
// distance — the classic Ball-Tree query sharing the same tree as the
// hyperplane search. p has the data dimensionality Dim().
func (t *BallTree) SearchNN(p []float32, k int) ([]Result, Stats) {
	return t.tree.SearchNN(liftPoint(p, t.raw), k)
}

// SearchFN returns the k indexed points furthest from the point p in
// Euclidean distance.
func (t *BallTree) SearchFN(p []float32, k int) ([]Result, Stats) {
	return t.tree.SearchFN(liftPoint(p, t.raw), k)
}

// SearchMIP returns the k indexed points with the largest inner product
// against q. q may have dimension Dim() (plain inner product <q, p>) or
// Dim()+1 (affine score <w, p> + b for q = (w; b)). Result distances hold
// the scores.
func (t *BallTree) SearchMIP(q []float32, k int) ([]Result, Stats) {
	switch len(q) {
	case t.raw:
		lifted := make([]float32, t.raw+1)
		copy(lifted, q) // trailing 0: the lifted 1-coordinate contributes nothing
		return t.tree.SearchMIP(lifted, k)
	case t.raw + 1:
		return t.tree.SearchMIP(q, k)
	}
	panic(fmt.Sprintf("p2h: MIP query has dimension %d, want %d or %d", len(q), t.raw, t.raw+1))
}

// liftPoint appends a trailing 1 so a raw point aligns with the lifted
// storage; for Euclidean queries the matching constants cancel in every
// difference.
func liftPoint(p []float32, d int) []float32 {
	if len(p) != d {
		panic(fmt.Sprintf("p2h: point has dimension %d, want %d", len(p), d))
	}
	out := make([]float32, d+1)
	copy(out, p)
	out[d] = 1
	return out
}

// Save serializes the index (including its reordered data copy) in the bare
// tree format. New code should prefer the package-level Save, which wraps
// the same payload in the self-describing container any kind loads from;
// both formats are accepted by Load and Open.
func (t *BallTree) Save(w io.Writer) error { return t.tree.Save(w) }

// SaveFile writes the index to the named file in the bare tree format; see
// (*BallTree).Save.
func (t *BallTree) SaveFile(path string) error { return t.tree.SaveFile(path) }

// LoadBallTree restores an index written by (*BallTree).Save. It is kept as
// a kind-pinned wrapper; new code should prefer the package-level Load,
// which restores any registered kind (including this format).
func LoadBallTree(r io.Reader) (*BallTree, error) {
	tree, err := balltree.Load(r)
	if err != nil {
		return nil, err
	}
	return &BallTree{tree: tree, raw: tree.Dim() - 1}, nil
}

// LoadBallTreeFile restores an index from the named file; it is the
// kind-pinned wrapper over Open, kept for compatibility.
func LoadBallTreeFile(path string) (*BallTree, error) {
	tree, err := balltree.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &BallTree{tree: tree, raw: tree.Dim() - 1}, nil
}

// BCTreeOptions configures NewBCTree. The zero value uses the paper's
// defaults (N0 = 100).
type BCTreeOptions struct {
	// LeafSize is the maximum leaf size N0; zero selects 100.
	LeafSize int
	// Seed makes construction deterministic.
	Seed int64
	// Quantize stores an 8-bit leaf mirror and filters leaf rows through its
	// exact error bound after the ball and cone bounds; see Spec.Quantize.
	Quantize bool
}

// BCTree is the paper's Section IV index: Ball-Tree plus point-level ball
// and cone bounds and collaborative inner product computing.
type BCTree struct {
	tree *bctree.Tree
	raw  int
}

// NewBCTree indexes the rows of data (raw points; the lift is internal). It
// is a thin wrapper over New with Spec{Kind: KindBCTree} that panics where
// New returns an error.
func NewBCTree(data *Matrix, opts BCTreeOptions) *BCTree {
	return mustNew(data, Spec{
		Kind: KindBCTree, LeafSize: opts.LeafSize, Seed: opts.Seed, Quantize: opts.Quantize,
	}).(*BCTree)
}

// Search implements Index.
func (t *BCTree) Search(q []float32, opts SearchOptions) ([]Result, Stats) {
	return t.tree.Search(checkQuery(q, t.raw), opts)
}

// IndexBytes implements Index.
func (t *BCTree) IndexBytes() int64 { return t.tree.IndexBytes() }

// N implements Index.
func (t *BCTree) N() int { return t.tree.N() }

// Dim implements Index.
func (t *BCTree) Dim() int { return t.raw }

// Save serializes the index (including its reordered data copy) in the bare
// tree format. New code should prefer the package-level Save, which wraps
// the same payload in the self-describing container any kind loads from;
// both formats are accepted by Load and Open.
func (t *BCTree) Save(w io.Writer) error { return t.tree.Save(w) }

// SaveFile writes the index to the named file in the bare tree format; see
// (*BCTree).Save.
func (t *BCTree) SaveFile(path string) error { return t.tree.SaveFile(path) }

// LoadBCTree restores an index written by (*BCTree).Save. It is kept as a
// kind-pinned wrapper; new code should prefer the package-level Load, which
// restores any registered kind (including this format).
func LoadBCTree(r io.Reader) (*BCTree, error) {
	tree, err := bctree.Load(r)
	if err != nil {
		return nil, err
	}
	return &BCTree{tree: tree, raw: tree.Dim() - 1}, nil
}

// LoadBCTreeFile restores an index from the named file; it is the
// kind-pinned wrapper over Open, kept for compatibility.
func LoadBCTreeFile(path string) (*BCTree, error) {
	tree, err := bctree.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &BCTree{tree: tree, raw: tree.Dim() - 1}, nil
}

// KDTreeOptions configures NewKDTree.
type KDTreeOptions struct {
	// LeafSize is the maximum leaf size; zero selects 100.
	LeafSize int
}

// KDTree is the bounding-box alternative the paper's Section III-A discusses.
type KDTree struct {
	tree  *kdtree.Tree
	raw   int
	attrs *attr.Store
}

// NewKDTree indexes the rows of data. It is a thin wrapper over New with
// Spec{Kind: KindKDTree} that panics where New returns an error.
func NewKDTree(data *Matrix, opts KDTreeOptions) *KDTree {
	return mustNew(data, Spec{Kind: KindKDTree, LeafSize: opts.LeafSize}).(*KDTree)
}

// Search implements Index.
func (t *KDTree) Search(q []float32, opts SearchOptions) ([]Result, Stats) {
	opts, empty := applyPred(opts, t.attrs)
	if empty {
		return nil, Stats{}
	}
	return t.tree.Search(checkQuery(q, t.raw), opts)
}

// IndexBytes implements Index.
func (t *KDTree) IndexBytes() int64 { return t.tree.IndexBytes() }

// N implements Index.
func (t *KDTree) N() int { return t.tree.N() }

// Dim implements Index.
func (t *KDTree) Dim() int { return t.raw }

// NHOptions configures NewNH; zero values select the defaults documented on
// the fields.
type NHOptions struct {
	// Lambda is the sampled transform dimension (zero: 2*(Dim+1)).
	Lambda int
	// M is the number of hash projections (zero: 64).
	M int
	// L is the collision threshold (zero: 2).
	L int
	// Seed makes construction deterministic.
	Seed int64
}

// NH is the nearest-hyperplane hashing baseline (Huang et al., SIGMOD 2021).
type NH struct {
	index *nh.Index
	raw   int
	attrs *attr.Store
}

// NewNH indexes the rows of data. It is a thin wrapper over New with
// Spec{Kind: KindNH} that panics where New returns an error.
func NewNH(data *Matrix, opts NHOptions) *NH {
	return mustNew(data, Spec{
		Kind: KindNH, Lambda: opts.Lambda, M: opts.M, L: opts.L, Seed: opts.Seed,
	}).(*NH)
}

// Search implements Index.
func (t *NH) Search(q []float32, opts SearchOptions) ([]Result, Stats) {
	opts, empty := applyPred(opts, t.attrs)
	if empty {
		return nil, Stats{}
	}
	return t.index.Search(checkQuery(q, t.raw), opts)
}

// IndexBytes implements Index.
func (t *NH) IndexBytes() int64 { return t.index.IndexBytes() }

// N implements Index.
func (t *NH) N() int { return t.index.N() }

// Dim implements Index.
func (t *NH) Dim() int { return t.raw }

// FHOptions configures NewFH; zero values select the defaults documented on
// the fields.
type FHOptions struct {
	// Lambda is the sampled transform dimension (zero: 2*(Dim+1)).
	Lambda int
	// M is the number of hash projections per partition (zero: 64).
	M int
	// L is the separation threshold (zero: 2).
	L int
	// B is the norm partition ratio in (0,1) (zero: 0.9).
	B float64
	// Seed makes construction deterministic.
	Seed int64
}

// FH is the furthest-hyperplane hashing baseline (Huang et al., SIGMOD 2021).
type FH struct {
	index *fh.Index
	raw   int
	attrs *attr.Store
}

// NewFH indexes the rows of data. It is a thin wrapper over New with
// Spec{Kind: KindFH} that panics where New returns an error.
func NewFH(data *Matrix, opts FHOptions) *FH {
	return mustNew(data, Spec{
		Kind: KindFH, Lambda: opts.Lambda, M: opts.M, L: opts.L, B: opts.B, Seed: opts.Seed,
	}).(*FH)
}

// Search implements Index.
func (t *FH) Search(q []float32, opts SearchOptions) ([]Result, Stats) {
	opts, empty := applyPred(opts, t.attrs)
	if empty {
		return nil, Stats{}
	}
	return t.index.Search(checkQuery(q, t.raw), opts)
}

// IndexBytes implements Index.
func (t *FH) IndexBytes() int64 { return t.index.IndexBytes() }

// N implements Index.
func (t *FH) N() int { return t.index.N() }

// Dim implements Index.
func (t *FH) Dim() int { return t.raw }

// LinearScan is the exhaustive baseline; exact, with no index structure.
type LinearScan struct {
	scan  *linearscan.Scanner
	raw   int
	attrs *attr.Store
}

// NewLinearScan wraps the rows of data for exhaustive search. It is a thin
// wrapper over New with Spec{Kind: KindLinearScan} that panics where New
// returns an error.
func NewLinearScan(data *Matrix) *LinearScan {
	return mustNew(data, Spec{Kind: KindLinearScan}).(*LinearScan)
}

// Search implements Index.
func (t *LinearScan) Search(q []float32, opts SearchOptions) ([]Result, Stats) {
	opts, empty := applyPred(opts, t.attrs)
	if empty {
		return nil, Stats{}
	}
	return t.scan.Search(checkQuery(q, t.raw), opts)
}

// IndexBytes implements Index: a scan has no index structure.
func (t *LinearScan) IndexBytes() int64 { return 0 }

// N implements Index.
func (t *LinearScan) N() int { return t.scan.N() }

// Dim implements Index.
func (t *LinearScan) Dim() int { return t.raw }

// Interface conformance checks.
var (
	_ Index = (*BallTree)(nil)
	_ Index = (*BCTree)(nil)
	_ Index = (*KDTree)(nil)
	_ Index = (*NH)(nil)
	_ Index = (*FH)(nil)
	_ Index = (*LinearScan)(nil)
)
