package p2h

import (
	"io"

	"p2h/internal/dataset"
)

// Datasets returns the names of the built-in synthetic data set surrogates
// (the 16 corpora of the paper's Table II), sorted alphabetically.
func Datasets() []string { return dataset.Names() }

// GenerateDataset synthesizes n points of the named surrogate data set
// (see Datasets). n <= 0 selects the surrogate's default size. The result is
// deterministic in seed.
func GenerateDataset(name string, n int, seed int64) *Matrix {
	return dataset.Generate(dataset.ByName(name), n, seed)
}

// GenerateQueries draws nq random hyperplane queries through the bulk of
// data, the protocol of the paper's evaluation. Each row is (normal; offset)
// with a unit normal, directly usable with Index.Search.
func GenerateQueries(data *Matrix, nq int, seed int64) *Matrix {
	return dataset.GenerateQueries(data, nq, seed)
}

// Dedup removes exact duplicate rows, keeping first occurrences — the
// paper's preprocessing step.
func Dedup(data *Matrix) *Matrix { return dataset.Dedup(data) }

// ReadFvecs reads a matrix in fvecs format (int32 dimension header followed
// by float32 components, per vector).
func ReadFvecs(r io.Reader) (*Matrix, error) { return dataset.ReadFvecs(r) }

// WriteFvecs writes a matrix in fvecs format.
func WriteFvecs(w io.Writer, m *Matrix) error { return dataset.WriteFvecs(w, m) }

// LoadFvecs reads the named fvecs file.
func LoadFvecs(path string) (*Matrix, error) { return dataset.LoadFvecs(path) }

// SaveFvecs writes m to the named fvecs file.
func SaveFvecs(path string, m *Matrix) error { return dataset.SaveFvecs(path, m) }

// GroundTruth computes the exact top-k results for every query row by
// exhaustive scan — the reference for recall measurements.
func GroundTruth(data, queries *Matrix, k int) [][]Result {
	out := make([][]Result, queries.N)
	scan := NewLinearScan(data)
	for i := 0; i < queries.N; i++ {
		out[i], _ = scan.Search(queries.Row(i), SearchOptions{K: k})
	}
	return out
}

// Recall measures the fraction of the exact top-k recovered by res, counting
// distance ties as hits.
func Recall(res, gt []Result) float64 {
	if len(gt) == 0 {
		return 1
	}
	kth := gt[len(gt)-1].Dist
	hits := 0
	for _, r := range res {
		if r.Dist <= kth*(1+1e-9)+1e-12 {
			hits++
		}
	}
	if hits > len(gt) {
		hits = len(gt)
	}
	return float64(hits) / float64(len(gt))
}
