package p2h

import (
	"math"
	"sort"
	"testing"
)

func TestShardedExactMatchesScan(t *testing.T) {
	data, queries, gt := testSetup(t)
	for _, shards := range []int{1, 3, 8} {
		ix := NewSharded(data, ShardedOptions{Shards: shards, Seed: 1})
		if ix.N() != data.N || ix.Dim() != data.D || ix.Shards() != shards {
			t.Fatalf("sharded shape: n=%d d=%d shards=%d", ix.N(), ix.Dim(), ix.Shards())
		}
		for i := 0; i < queries.N; i++ {
			res, _ := ix.Search(queries.Row(i), SearchOptions{K: 5})
			if r := Recall(res, gt[i]); r < 1-1e-12 {
				t.Fatalf("shards=%d query %d: recall %v", shards, i, r)
			}
		}
	}
}

func TestShardedBudgetRespected(t *testing.T) {
	data, queries, _ := testSetup(t)
	ix := NewSharded(data, ShardedOptions{Shards: 4, Seed: 2})
	for i := 0; i < queries.N; i++ {
		_, st := ix.Search(queries.Row(i), SearchOptions{K: 5, Budget: 40})
		if st.Candidates > int64(40+ix.Shards()) {
			t.Fatalf("budget blown: %d", st.Candidates)
		}
	}
}

func TestSearchBatchMatchesSequential(t *testing.T) {
	data, queries, _ := testSetup(t)
	ix := NewBCTree(data, BCTreeOptions{Seed: 3})
	batch := SearchBatch(ix, queries, SearchOptions{K: 5}, 4)
	if len(batch) != queries.N {
		t.Fatalf("batch size %d", len(batch))
	}
	for i := 0; i < queries.N; i++ {
		want, _ := ix.Search(queries.Row(i), SearchOptions{K: 5})
		if len(batch[i]) != len(want) {
			t.Fatalf("query %d: %d results, want %d", i, len(batch[i]), len(want))
		}
		for j := range want {
			if batch[i][j] != want[j] {
				t.Fatalf("query %d rank %d: %v != %v", i, j, batch[i][j], want[j])
			}
		}
	}
}

func TestSearchBatchDefaultsWorkers(t *testing.T) {
	data, queries, _ := testSetup(t)
	ix := NewBCTree(data, BCTreeOptions{Seed: 3})
	want := SearchBatch(ix, queries, SearchOptions{K: 5}, 1)
	for _, workers := range []int{0, -4} { // non-positive selects GOMAXPROCS
		got := SearchBatch(ix, queries, SearchOptions{K: 5}, workers)
		if len(got) != queries.N {
			t.Fatalf("workers=%d: %d result sets", workers, len(got))
		}
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("workers=%d query %d rank %d: %v != %v", workers, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

func TestSearchBatchEmptyQueryMatrix(t *testing.T) {
	data, _, _ := testSetup(t)
	ix := NewBCTree(data, BCTreeOptions{Seed: 3})
	out := SearchBatch(ix, NewMatrix(0, data.D+1), SearchOptions{K: 5}, 4)
	if out == nil || len(out) != 0 {
		t.Fatalf("empty batch: %v", out)
	}
}

func TestSearchBatchValidatesDimensions(t *testing.T) {
	data, _, _ := testSetup(t)
	ix := NewBCTree(data, BCTreeOptions{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	SearchBatch(ix, NewMatrix(3, data.D), SearchOptions{K: 1}, 2) // missing offset dim
}

func TestTuneBudgetReachesTarget(t *testing.T) {
	data, queries, gt := testSetup(t)
	ix := NewBCTree(data, BCTreeOptions{Seed: 4})
	budget := TuneBudget(ix, queries, gt, 5, 0.9)
	if budget < 1 || budget > data.N {
		t.Fatalf("budget %d out of range", budget)
	}
	var recall float64
	for i := 0; i < queries.N; i++ {
		res, _ := ix.Search(queries.Row(i), SearchOptions{K: 5, Budget: budget})
		recall += Recall(res, gt[i])
	}
	if recall/float64(queries.N) < 0.9 {
		t.Fatalf("tuned budget %d gives recall %v < 0.9", budget, recall/float64(queries.N))
	}
}

func TestTuneBudgetUnreachableTargetReturnsN(t *testing.T) {
	data, queries, gt := testSetup(t)
	ix := NewBCTree(data, BCTreeOptions{Seed: 4})
	// Recall can never exceed 1, so an impossible target must fall through
	// the whole fraction ladder and return the full data size.
	if budget := TuneBudget(ix, queries, gt, 5, 1.5); budget != data.N {
		t.Fatalf("unreachable target: budget %d, want n=%d", budget, data.N)
	}
}

func TestTuneBudgetValidatesInput(t *testing.T) {
	data, queries, _ := testSetup(t)
	ix := NewBCTree(data, BCTreeOptions{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	TuneBudget(ix, queries, nil, 5, 0.9) // no ground truth
}

func TestBallTreeSearchNNMatchesBrute(t *testing.T) {
	data, _, _ := testSetup(t)
	ix := NewBallTree(data, BallTreeOptions{Seed: 5})
	p := data.Row(42)
	res, _ := ix.SearchNN(p, 3)
	if res[0].ID != 42 || res[0].Dist > 1e-6 {
		t.Fatalf("nearest neighbor of a data point must be itself: %v", res[0])
	}
	// Brute-force check of the full ranking.
	type pair struct {
		id int32
		d  float64
	}
	all := make([]pair, data.N)
	for i := 0; i < data.N; i++ {
		var s float64
		row := data.Row(i)
		for j := range row {
			diff := float64(row[j]) - float64(p[j])
			s += diff * diff
		}
		all[i] = pair{int32(i), math.Sqrt(s)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].d != all[j].d {
			return all[i].d < all[j].d
		}
		return all[i].id < all[j].id
	})
	for i := range res {
		if math.Abs(res[i].Dist-all[i].d) > 1e-6*(1+all[i].d) {
			t.Fatalf("rank %d: %v want %v", i, res[i].Dist, all[i].d)
		}
	}
}

func TestBallTreeSearchFNFurthest(t *testing.T) {
	data, _, _ := testSetup(t)
	ix := NewBallTree(data, BallTreeOptions{Seed: 6})
	p := data.Row(0)
	res, _ := ix.SearchFN(p, 5)
	if len(res) != 5 {
		t.Fatalf("results %d", len(res))
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist > res[i-1].Dist {
			t.Fatalf("FN not descending: %v", res)
		}
	}
	// The furthest point must be at least as far as a random other point.
	other := 0.0
	row := data.Row(77)
	for j := range row {
		diff := float64(row[j]) - float64(p[j])
		other += diff * diff
	}
	if res[0].Dist < math.Sqrt(other)-1e-6 {
		t.Fatal("claimed furthest is nearer than a sampled point")
	}
}

func TestBallTreeSearchMIPBothQueryForms(t *testing.T) {
	data, _, _ := testSetup(t)
	ix := NewBallTree(data, BallTreeOptions{Seed: 7})
	q := make([]float32, data.D)
	for i := range q {
		q[i] = float32(i%5) - 2
	}
	plain, _ := ix.SearchMIP(q, 4)
	affine, _ := ix.SearchMIP(append(append([]float32{}, q...), 0), 4)
	for i := range plain {
		if plain[i] != affine[i] {
			t.Fatalf("rank %d: plain %v vs affine-with-zero-offset %v", i, plain[i], affine[i])
		}
	}
	// Brute check of the top score.
	best, bestID := math.Inf(-1), int32(-1)
	for i := 0; i < data.N; i++ {
		var s float64
		row := data.Row(i)
		for j := range row {
			s += float64(q[j]) * float64(row[j])
		}
		if s > best {
			best, bestID = s, int32(i)
		}
	}
	if plain[0].ID != bestID || math.Abs(plain[0].Dist-best) > 1e-6*(1+math.Abs(best)) {
		t.Fatalf("MIP top %v, brute (%d, %v)", plain[0], bestID, best)
	}
}

func TestBallTreeSearchMIPRejectsBadDim(t *testing.T) {
	data, _, _ := testSetup(t)
	ix := NewBallTree(data, BallTreeOptions{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ix.SearchMIP(make([]float32, data.D+2), 1)
}

func TestDynamicFacadeLifecycle(t *testing.T) {
	data, queries, gt := testSetup(t)
	ix := NewDynamic(data, DynamicOptions{Seed: 1})
	if ix.N() != data.N || ix.Dim() != data.D {
		t.Fatalf("shape %d/%d", ix.N(), ix.Dim())
	}
	// Bulk-loaded dynamic index is exact.
	for i := 0; i < queries.N; i++ {
		res, _ := ix.Search(queries.Row(i), SearchOptions{K: 5})
		if r := Recall(res, gt[i]); r < 1-1e-12 {
			t.Fatalf("query %d recall %v", i, r)
		}
	}
	// Deleting the current best promotes the runner-up.
	q := queries.Row(0)
	before, _ := ix.Search(q, SearchOptions{K: 2})
	if !ix.Delete(before[0].ID) {
		t.Fatal("delete failed")
	}
	after, _ := ix.Search(q, SearchOptions{K: 1})
	if after[0].ID != before[1].ID {
		t.Fatalf("after delete want %v, got %v", before[1], after[0])
	}
	// Re-inserting the deleted vector brings the distance back (new handle).
	p := data.Row(int(before[0].ID))
	h := ix.Insert(p)
	again, _ := ix.Search(q, SearchOptions{K: 1})
	if again[0].ID != h {
		t.Fatalf("reinserted point (handle %d) should win again, got %v", h, again[0])
	}
}

func TestDynamicFacadeEmptyStart(t *testing.T) {
	ix := NewDynamic(nil, DynamicOptions{Dim: 4})
	if ix.N() != 0 || ix.Dim() != 4 {
		t.Fatalf("empty start: n=%d dim=%d", ix.N(), ix.Dim())
	}
	h := ix.Insert([]float32{1, 2, 3, 4})
	q := Hyperplane([]float32{1, 0, 0, 0}, -1)
	res, _ := ix.Search(q, SearchOptions{K: 1})
	if len(res) != 1 || res[0].ID != h || res[0].Dist > 1e-6 {
		t.Fatalf("result %v", res)
	}
}

func TestDynamicFacadeRequiresDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewDynamic(nil, DynamicOptions{})
}
