package p2h_test

// The recall gate: every exact index must return recall 1.0 against the
// exhaustive linear scan on a generated dataset. CI runs this test as its
// own step (see .github/workflows/ci.yml), so storage-layout or kernel
// refactors cannot silently break correctness: a pruning bound that became
// unsound shows up here as recall < 1 long before any benchmark moves.

import (
	"math"
	"testing"

	p2h "p2h"
)

// exactIndexes enumerates the indexes that promise exact answers.
func exactIndexes(data *p2h.Matrix) map[string]p2h.Index {
	return map[string]p2h.Index{
		"balltree":       p2h.NewBallTree(data, p2h.BallTreeOptions{Seed: 3}),
		"bctree":         p2h.NewBCTree(data, p2h.BCTreeOptions{Seed: 3}),
		"kdtree":         p2h.NewKDTree(data, p2h.KDTreeOptions{}),
		"sharded":        p2h.NewSharded(data, p2h.ShardedOptions{Shards: 4, Seed: 3}),
		"dynamic":        p2h.NewDynamic(data, p2h.DynamicOptions{Seed: 3}),
		"balltree-quant": p2h.NewBallTree(data, p2h.BallTreeOptions{Seed: 3, Quantize: true}),
		"bctree-quant":   p2h.NewBCTree(data, p2h.BCTreeOptions{Seed: 3, Quantize: true}),
		"sharded-quant":  p2h.NewSharded(data, p2h.ShardedOptions{Shards: 4, Seed: 3, Quantize: true}),
	}
}

func TestRecallGateExactIndexes(t *testing.T) {
	const k = 10
	for _, set := range []string{"Sift", "Cifar-10"} {
		data := p2h.Dedup(p2h.GenerateDataset(set, 2000, 1))
		queries := p2h.GenerateQueries(data, 20, 2)
		scan := p2h.NewLinearScan(data)
		for name, ix := range exactIndexes(data) {
			hits, total := 0, 0
			for qi := 0; qi < queries.N; qi++ {
				q := queries.Row(qi)
				got, _ := ix.Search(q, p2h.SearchOptions{K: k})
				want, _ := scan.Search(q, p2h.SearchOptions{K: k})
				if len(got) != len(want) {
					t.Fatalf("%s/%s query %d: %d results, want %d", set, name, qi, len(got), len(want))
				}
				// Distance-based recall: a returned point counts as a hit when
				// its distance is within the ground-truth k-th distance (the
				// standard convention, robust to exact ties).
				kth := want[len(want)-1].Dist
				for _, r := range got {
					if r.Dist <= kth*(1+1e-9)+1e-12 {
						hits++
					}
				}
				total += len(want)
			}
			if recall := float64(hits) / float64(total); math.Abs(recall-1) > 1e-12 {
				t.Errorf("%s/%s: recall %.6f, want exactly 1.0", set, name, recall)
			}
		}
	}
}

// TestRecallGateFiltered runs the gate with a declarative predicate: exact
// indexes answering a filtered search through subtree pushdown must return
// recall 1.0 against the exhaustive filtered linear scan, so an unsound
// per-node attribute summary (one that prunes a subtree that held a match)
// shows up here directly.
func TestRecallGateFiltered(t *testing.T) {
	const k = 10
	for _, set := range []string{"Sift", "Cifar-10"} {
		data := p2h.Dedup(p2h.GenerateDataset(set, 2000, 1))
		queries := p2h.GenerateQueries(data, 20, 2)
		attrs := make([]p2h.PointAttrs, data.N)
		for i := range attrs {
			var tags []string
			if i%10 == 0 {
				tags = append(tags, "warm")
			}
			attrs[i] = p2h.PointAttrs{
				Tags:   tags,
				Floats: map[string]float64{"score": float64(i%1000) / 1000},
			}
		}
		scan := p2h.NewLinearScan(data)
		if err := p2h.AttachAttributes(scan, attrs); err != nil {
			t.Fatal(err)
		}
		for _, pred := range []*p2h.Pred{
			p2h.TagIs("warm"),
			p2h.FieldBetween("score", 0.2, 0.4),
			p2h.AllOf(p2h.TagIs("warm"), p2h.FieldAtLeast("score", 0.3)),
		} {
			opts := p2h.SearchOptions{K: k, Pred: pred}
			for name, ix := range exactIndexes(data) {
				if err := p2h.AttachAttributes(ix, attrs); err != nil {
					t.Fatalf("%s/%s: %v", set, name, err)
				}
				hits, total := 0, 0
				for qi := 0; qi < queries.N; qi++ {
					q := queries.Row(qi)
					got, _ := ix.Search(q, opts)
					want, _ := scan.Search(q, opts)
					if len(got) != len(want) {
						t.Fatalf("%s/%s pred %s query %d: %d results, want %d",
							set, name, pred.Canon(), qi, len(got), len(want))
					}
					if len(want) == 0 {
						continue
					}
					kth := want[len(want)-1].Dist
					for _, r := range got {
						if r.Dist <= kth*(1+1e-9)+1e-12 {
							hits++
						}
					}
					total += len(want)
				}
				if recall := float64(hits) / float64(total); math.Abs(recall-1) > 1e-12 {
					t.Errorf("%s/%s pred %s: recall %.6f, want exactly 1.0",
						set, name, pred.Canon(), recall)
				}
			}
		}
	}
}

// TestRecallGateBatchedPath runs the same gate through SearchBatch: the
// shared batched traversal must stay exact too, and — stronger — must agree
// with the per-query path result for result (exact answers are canonical,
// so the two executions cannot legitimately differ even on ties).
func TestRecallGateBatchedPath(t *testing.T) {
	const k = 10
	for _, set := range []string{"Sift", "Cifar-10"} {
		data := p2h.Dedup(p2h.GenerateDataset(set, 2000, 1))
		queries := p2h.GenerateQueries(data, 20, 2)
		scan := p2h.NewLinearScan(data)
		for name, ix := range exactIndexes(data) {
			batch := p2h.SearchBatch(ix, queries, p2h.SearchOptions{K: k}, 2)
			hits, total := 0, 0
			for qi := 0; qi < queries.N; qi++ {
				q := queries.Row(qi)
				want, _ := scan.Search(q, p2h.SearchOptions{K: k})
				seq, _ := ix.Search(q, p2h.SearchOptions{K: k})
				if len(batch[qi]) != len(want) {
					t.Fatalf("%s/%s query %d: %d results, want %d", set, name, qi, len(batch[qi]), len(want))
				}
				for i := range seq {
					if batch[qi][i] != seq[i] {
						t.Fatalf("%s/%s query %d rank %d: batched %+v != sequential %+v",
							set, name, qi, i, batch[qi][i], seq[i])
					}
				}
				kth := want[len(want)-1].Dist
				for _, r := range batch[qi] {
					if r.Dist <= kth*(1+1e-9)+1e-12 {
						hits++
					}
				}
				total += len(want)
			}
			if recall := float64(hits) / float64(total); math.Abs(recall-1) > 1e-12 {
				t.Errorf("%s/%s batched: recall %.6f, want exactly 1.0", set, name, recall)
			}
		}
	}
}
