package p2h

import (
	"bytes"
	"math"
	"path/filepath"
	"testing"
)

// testSetup builds a small deterministic workload through the public API.
func testSetup(t *testing.T) (*Matrix, *Matrix, [][]Result) {
	t.Helper()
	data := Dedup(GenerateDataset("Sift", 800, 1))
	queries := GenerateQueries(data, 10, 2)
	return data, queries, GroundTruth(data, queries, 5)
}

func allIndexes(data *Matrix) map[string]Index {
	return map[string]Index{
		"balltree": NewBallTree(data, BallTreeOptions{LeafSize: 30, Seed: 3}),
		"bctree":   NewBCTree(data, BCTreeOptions{LeafSize: 30, Seed: 3}),
		"kdtree":   NewKDTree(data, KDTreeOptions{LeafSize: 30}),
		"nh":       NewNH(data, NHOptions{Lambda: 32, M: 8, Seed: 3}),
		"fh":       NewFH(data, FHOptions{Lambda: 32, M: 8, Seed: 3}),
		"scan":     NewLinearScan(data),
		"quant":    NewQuantizedScan(data),
		"sharded":  NewSharded(data, ShardedOptions{Shards: 4, Seed: 3}),
	}
}

func TestAllIndexesExactWithFullBudget(t *testing.T) {
	data, queries, gt := testSetup(t)
	for name, ix := range allIndexes(data) {
		if ix.N() != data.N || ix.Dim() != data.D {
			t.Fatalf("%s: shape %d/%d want %d/%d", name, ix.N(), ix.Dim(), data.N, data.D)
		}
		for i := 0; i < queries.N; i++ {
			res, _ := ix.Search(queries.Row(i), SearchOptions{K: 5})
			if r := Recall(res, gt[i]); r < 1-1e-12 {
				t.Fatalf("%s query %d: full-budget recall %v", name, i, r)
			}
		}
	}
}

func TestSearchValidatesQueryDimension(t *testing.T) {
	data, _, _ := testSetup(t)
	ix := NewBCTree(data, BCTreeOptions{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on wrong query dimension")
		}
	}()
	ix.Search(make([]float32, data.D), SearchOptions{K: 1}) // missing offset
}

func TestSearchRescalesUnnormalizedQueries(t *testing.T) {
	data, queries, _ := testSetup(t)
	ix := NewBCTree(data, BCTreeOptions{Seed: 1})
	q := queries.Row(0)
	// Scale the whole query by 7: same hyperplane, so same neighbors and
	// same distances after the library rescales.
	scaled := make([]float32, len(q))
	for i, v := range q {
		scaled[i] = v * 7
	}
	a, _ := ix.Search(q, SearchOptions{K: 5})
	b, _ := ix.Search(scaled, SearchOptions{K: 5})
	for i := range a {
		if a[i].ID != b[i].ID || math.Abs(a[i].Dist-b[i].Dist) > 1e-5*(1+a[i].Dist) {
			t.Fatalf("rank %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestHyperplaneAndDistance(t *testing.T) {
	// Point (3, 4), hyperplane x = 1 -> normal (1, 0), offset -1, distance 2.
	q := Hyperplane([]float32{1, 0}, -1)
	if got := Distance([]float32{3, 4}, q); math.Abs(got-2) > 1e-12 {
		t.Fatalf("distance %v want 2", got)
	}
	// Un-normalized normal gives the same geometric distance.
	q2 := Hyperplane([]float32{2, 0}, -2)
	if got := Distance([]float32{3, 4}, q2); math.Abs(got-2) > 1e-6 {
		t.Fatalf("distance %v want 2", got)
	}
}

func TestDistanceAgreesWithIndex(t *testing.T) {
	data, queries, _ := testSetup(t)
	ix := NewLinearScan(data)
	for i := 0; i < 3; i++ {
		q := queries.Row(i)
		res, _ := ix.Search(q, SearchOptions{K: 3})
		for _, r := range res {
			want := Distance(data.Row(int(r.ID)), q)
			if math.Abs(want-r.Dist) > 1e-5*(1+want) {
				t.Fatalf("query %d id %d: index dist %v, Eq.1 dist %v", i, r.ID, r.Dist, want)
			}
		}
	}
}

func TestBallTreeSaveLoadRoundTrip(t *testing.T) {
	data, queries, _ := testSetup(t)
	orig := NewBallTree(data, BallTreeOptions{LeafSize: 25, Seed: 4})
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadBallTree(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if restored.N() != orig.N() || restored.Dim() != orig.Dim() {
		t.Fatalf("restored shape %d/%d", restored.N(), restored.Dim())
	}
	q := queries.Row(0)
	a, _ := orig.Search(q, SearchOptions{K: 4})
	b, _ := restored.Search(q, SearchOptions{K: 4})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBCTreeSaveLoadFile(t *testing.T) {
	data, queries, _ := testSetup(t)
	orig := NewBCTree(data, BCTreeOptions{LeafSize: 25, Seed: 4})
	path := filepath.Join(t.TempDir(), "ix.p2hbc")
	if err := orig.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	restored, err := LoadBCTreeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	q := queries.Row(0)
	a, _ := orig.Search(q, SearchOptions{K: 4})
	b, _ := restored.Search(q, SearchOptions{K: 4})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("rank %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestFvecsRoundTripPublic(t *testing.T) {
	data := GenerateDataset("Music", 50, 3)
	path := filepath.Join(t.TempDir(), "d.fvecs")
	if err := SaveFvecs(path, data); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFvecs(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != data.N || back.D != data.D {
		t.Fatalf("shape %dx%d", back.N, back.D)
	}
	for i := range data.Data {
		if data.Data[i] != back.Data[i] {
			t.Fatal("payload mismatch")
		}
	}
}

func TestDatasetsCatalog(t *testing.T) {
	names := Datasets()
	if len(names) != 16 {
		t.Fatalf("want 16 catalog entries, got %d", len(names))
	}
	found := false
	for _, n := range names {
		if n == "Sift" {
			found = true
		}
	}
	if !found {
		t.Fatal("catalog must contain Sift")
	}
}

func TestBudgetTradeoffThroughFacade(t *testing.T) {
	data, queries, gt := testSetup(t)
	ix := NewBCTree(data, BCTreeOptions{Seed: 5})
	var rLow, rHigh float64
	for i := 0; i < queries.N; i++ {
		low, _ := ix.Search(queries.Row(i), SearchOptions{K: 5, Budget: 8})
		high, _ := ix.Search(queries.Row(i), SearchOptions{K: 5, Budget: data.N})
		rLow += Recall(low, gt[i])
		rHigh += Recall(high, gt[i])
	}
	if rHigh < float64(queries.N)-1e-9 {
		t.Fatalf("full budget not exact: %v", rHigh)
	}
	if rLow > rHigh {
		t.Fatalf("budget 8 recall %v beats full %v", rLow, rHigh)
	}
}
