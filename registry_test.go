package p2h

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// TestEveryKindLoadsOrDocumentsBuildOnly: the registry invariant — each
// registered kind either round-trips through Save/Load or carries a
// documented build-only marker (never silently neither).
func TestEveryKindLoadsOrDocumentsBuildOnly(t *testing.T) {
	kinds := Kinds()
	if len(kinds) < 9 {
		t.Fatalf("only %d kinds registered: %v", len(kinds), kinds)
	}
	persistable := map[string]bool{
		KindBallTree: true, KindBCTree: true, KindKDTree: true,
		KindSharded: true, KindDynamic: true,
	}
	for _, kind := range kinds {
		ok, buildOnly, err := KindIsPersistable(kind)
		if err != nil {
			t.Fatalf("KindIsPersistable(%q): %v", kind, err)
		}
		if ok == (buildOnly != "") {
			t.Fatalf("kind %q: persistable=%v but build-only marker %q", kind, ok, buildOnly)
		}
		if want := persistable[kind]; ok != want {
			t.Fatalf("kind %q: persistable = %v, want %v", kind, ok, want)
		}
	}
	if _, _, err := KindIsPersistable("nope"); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v, want ErrUnknownKind", err)
	}
}

// registryTestIndex is a toy backend for registration tests.
type registryTestIndex struct {
	*LinearScan
}

func TestRegisterKindValidation(t *testing.T) {
	build := func(data *Matrix, spec Spec) (Index, error) {
		if err := checkBuildData("regtest", data, spec); err != nil {
			return nil, err
		}
		return &registryTestIndex{NewLinearScan(data)}, nil
	}
	cases := []struct {
		name string
		kind IndexKind
	}{
		{"empty name", IndexKind{Build: build, BuildOnly: "x"}},
		{"no build", IndexKind{Name: "regtest-nobuild", BuildOnly: "x"}},
		{"half persistence", IndexKind{Name: "regtest-half", Build: build,
			Save: func(io.Writer, Index) error { return nil }, BuildOnly: "x"}},
		{"no loader no marker", IndexKind{Name: "regtest-neither", Build: build}},
		{"marker on persistable", IndexKind{Name: "regtest-both", Build: build,
			Save:      func(io.Writer, Index) error { return nil },
			Load:      func(io.Reader, Spec) (Index, error) { return nil, nil },
			Owns:      func(Index) bool { return false },
			SpecOf:    func(Index) Spec { return Spec{} },
			BuildOnly: "x"}},
		{"persistable without owns", IndexKind{Name: "regtest-noowns", Build: build,
			Save: func(io.Writer, Index) error { return nil },
			Load: func(io.Reader, Spec) (Index, error) { return nil, nil }}},
		{"name collision", IndexKind{Name: KindBCTree, Build: build, BuildOnly: "x"}},
		{"alias collision", IndexKind{Name: "regtest-alias", Aliases: []string{"bc"}, Build: build, BuildOnly: "x"}},
	}
	for _, c := range cases {
		if err := RegisterKind(c.kind); err == nil {
			t.Fatalf("%s: RegisterKind accepted an invalid descriptor", c.name)
		}
	}
}

// TestRegisterCustomKind: the extensibility contract — a newly registered
// backend immediately works through New, KindOf and Save's dispatch.
func TestRegisterCustomKind(t *testing.T) {
	err := RegisterKind(IndexKind{
		Name:        "regtest-custom",
		Aliases:     []string{"regtest-alias2"},
		Description: "test-only wrapper over the linear scan",
		Build: func(data *Matrix, spec Spec) (Index, error) {
			if err := checkBuildData("regtest-custom", data, spec); err != nil {
				return nil, err
			}
			return &registryTestIndex{NewLinearScan(data)}, nil
		},
		Owns:      func(ix Index) bool { _, ok := ix.(*registryTestIndex); return ok },
		BuildOnly: "test-only kind",
	})
	if err != nil {
		t.Fatalf("RegisterKind: %v", err)
	}

	data := specTestData(60, 4, 1)
	ix, err := New(data, Spec{Kind: "REGTEST-ALIAS2"})
	if err != nil {
		t.Fatalf("New via alias: %v", err)
	}
	if got := KindOf(ix); got != "regtest-custom" {
		t.Fatalf("KindOf = %q", got)
	}
	found := false
	for _, k := range Kinds() {
		if k == "regtest-custom" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Kinds() missing the custom kind: %v", Kinds())
	}
	// Build-only: Save refuses with the documented marker.
	var buf bytes.Buffer
	if err := Save(&buf, ix); err == nil || !strings.Contains(err.Error(), "test-only kind") {
		t.Fatalf("Save on build-only custom kind: %v", err)
	}
	// Duplicate registration is rejected.
	if err := RegisterKind(IndexKind{
		Name:      "regtest-custom",
		Build:     func(*Matrix, Spec) (Index, error) { return nil, nil },
		BuildOnly: "x",
	}); err == nil {
		t.Fatal("duplicate RegisterKind accepted")
	}
}
