package p2h

import (
	"encoding/json"
	"errors"
	"math/rand"
	"reflect"
	"testing"
)

// specTestData builds a small deterministic matrix.
func specTestData(n, d int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n, d)
	for i := range m.Data {
		m.Data[i] = float32(rng.NormFloat64())
	}
	return m
}

// TestNewBuildsEveryKind: the acceptance bar — every registered kind is
// constructible via New(data, Spec{Kind: ...}) and answers queries.
func TestNewBuildsEveryKind(t *testing.T) {
	data := specTestData(300, 12, 1)
	queries := GenerateQueries(data, 3, 2)
	for _, kind := range Kinds() {
		ix, err := New(data, Spec{Kind: kind, Seed: 7, Shards: 3})
		if err != nil {
			t.Fatalf("New(%q): %v", kind, err)
		}
		if ix.N() != data.N || ix.Dim() != data.D {
			t.Fatalf("%s: shape %d/%d, want %d/%d", kind, ix.N(), ix.Dim(), data.N, data.D)
		}
		if got := KindOf(ix); got != kind {
			t.Fatalf("KindOf(%s index) = %q", kind, got)
		}
		res, _ := ix.Search(queries.Row(0), SearchOptions{K: 5})
		if len(res) != 5 {
			t.Fatalf("%s: %d results, want 5", kind, len(res))
		}
	}
}

// TestNewMatchesLegacyConstructors: the thin wrappers and the declarative
// path produce identical indexes (same construction code runs underneath).
func TestNewMatchesLegacyConstructors(t *testing.T) {
	data := specTestData(250, 10, 3)
	queries := GenerateQueries(data, 5, 4)

	type build struct {
		name   string
		legacy Index
		spec   Spec
	}
	builds := []build{
		{"balltree", NewBallTree(data, BallTreeOptions{LeafSize: 32, Seed: 5}),
			Spec{Kind: KindBallTree, LeafSize: 32, Seed: 5}},
		{"bctree", NewBCTree(data, BCTreeOptions{LeafSize: 32, Seed: 5}),
			Spec{Kind: KindBCTree, LeafSize: 32, Seed: 5}},
		{"kdtree", NewKDTree(data, KDTreeOptions{LeafSize: 32}),
			Spec{Kind: KindKDTree, LeafSize: 32}},
		{"sharded", NewSharded(data, ShardedOptions{Shards: 3, LeafSize: 32, Seed: 5, Workers: 2}),
			Spec{Kind: KindSharded, Shards: 3, LeafSize: 32, Seed: 5, Workers: 2}},
		{"dynamic", NewDynamic(data, DynamicOptions{LeafSize: 32, Seed: 5}),
			Spec{Kind: KindDynamic, LeafSize: 32, Seed: 5}},
		{"nh", NewNH(data, NHOptions{M: 16, Seed: 5}), Spec{Kind: KindNH, M: 16, Seed: 5}},
		{"fh", NewFH(data, FHOptions{M: 16, Seed: 5}), Spec{Kind: KindFH, M: 16, Seed: 5}},
		{"linearscan", NewLinearScan(data), Spec{Kind: KindLinearScan}},
		{"quantizedscan", NewQuantizedScan(data), Spec{Kind: KindQuantizedScan}},
	}
	for _, b := range builds {
		viaSpec, err := New(data, b.spec)
		if err != nil {
			t.Fatalf("New(%s): %v", b.name, err)
		}
		for qi := 0; qi < queries.N; qi++ {
			want, _ := b.legacy.Search(queries.Row(qi), SearchOptions{K: 4})
			got, _ := viaSpec.Search(queries.Row(qi), SearchOptions{K: 4})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: query %d diverges between legacy and Spec construction", b.name, qi)
			}
		}
	}
}

func TestNewErrors(t *testing.T) {
	data := specTestData(50, 4, 1)

	if _, err := New(data, Spec{Kind: "no-such-kind"}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("unknown kind: err = %v, want ErrUnknownKind", err)
	}
	if _, err := New(data, Spec{}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("empty kind: err = %v, want ErrUnknownKind", err)
	}
	if _, err := New(nil, Spec{Kind: KindBCTree}); err == nil {
		t.Fatal("nil data accepted by bctree")
	}
	if _, err := New(NewMatrix(0, 4), Spec{Kind: KindBallTree}); err == nil {
		t.Fatal("empty data accepted by balltree")
	}
	// Non-dynamic kinds take the dimensionality from the data but reject a
	// contradicting Spec.Dim (a config/data mix-up).
	if _, err := New(data, Spec{Kind: KindBCTree, Dim: 99}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("bctree contradicting Dim: err = %v, want ErrDimMismatch", err)
	}
	if _, err := New(data, Spec{Kind: KindBCTree, Dim: 4}); err != nil {
		t.Fatalf("bctree matching Dim: %v", err)
	}
	// Dynamic: empty start needs Dim; a contradicting Dim is rejected.
	if _, err := New(nil, Spec{Kind: KindDynamic}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("dynamic empty start without Dim: err = %v, want ErrDimMismatch", err)
	}
	if _, err := New(data, Spec{Kind: KindDynamic, Dim: 7}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("dynamic contradicting Dim: err = %v, want ErrDimMismatch", err)
	}
	// Matching Dim is fine, as is an empty start with Dim.
	if _, err := New(data, Spec{Kind: KindDynamic, Dim: 4}); err != nil {
		t.Fatalf("dynamic matching Dim: %v", err)
	}
	ix, err := New(nil, Spec{Kind: KindDynamic, Dim: 6})
	if err != nil {
		t.Fatalf("dynamic empty start: %v", err)
	}
	if ix.Dim() != 6 || ix.N() != 0 {
		t.Fatalf("dynamic empty start shape: %d/%d", ix.N(), ix.Dim())
	}
}

// TestKindAliases: the short names the CLIs use resolve to the canonical
// kinds.
func TestKindAliases(t *testing.T) {
	data := specTestData(80, 5, 2)
	for alias, want := range map[string]string{
		"bc": KindBCTree, "ball": KindBallTree, "kd": KindKDTree,
		"scan": KindLinearScan, "linear": KindLinearScan,
		"quant": KindQuantizedScan, "shard": KindSharded, "dyn": KindDynamic,
		"BCTree": KindBCTree, " bctree ": KindBCTree, // case- and space-insensitive
	} {
		ix, err := New(data, Spec{Kind: alias, Shards: 2})
		if err != nil {
			t.Fatalf("New(%q): %v", alias, err)
		}
		if got := KindOf(ix); got != want {
			t.Fatalf("alias %q built %q, want %q", alias, got, want)
		}
	}
}

// TestSpecJSONRoundTrip: the struct tags give a stable wire form, the
// configuration surface of the cmd tools and the container header.
func TestSpecJSONRoundTrip(t *testing.T) {
	spec := Spec{Kind: KindSharded, LeafSize: 64, Seed: 9, Shards: 8, Workers: 4}
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != spec {
		t.Fatalf("round trip: %+v != %+v", back, spec)
	}
	// Zero fields are omitted: a minimal spec stays minimal on the wire.
	b, err = json.Marshal(Spec{Kind: KindBCTree})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"kind":"bctree"}` {
		t.Fatalf("minimal spec JSON = %s", b)
	}
}

func TestNewServerFromSpec(t *testing.T) {
	data := specTestData(200, 8, 1)
	srv, err := NewServerFromSpec(data, Spec{Kind: KindBCTree, LeafSize: 40, Seed: 2}, ServerOptions{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ix := NewBCTree(data, BCTreeOptions{LeafSize: 40, Seed: 2})
	queries := GenerateQueries(data, 4, 3)
	for i := 0; i < queries.N; i++ {
		want, _ := ix.Search(queries.Row(i), SearchOptions{K: 3})
		got, _ := srv.Search(queries.Row(i), SearchOptions{K: 3})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: server diverges from bare index", i)
		}
	}

	if _, err := NewServerFromSpec(data, Spec{Kind: "nope"}, ServerOptions{}); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v, want ErrUnknownKind", err)
	}
}
